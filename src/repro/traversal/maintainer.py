"""The ``Trav-h`` maintenance engine (baseline).

Combines the DFS insertion search, the cascade removal search, and —
the dominant cost — maintenance of the ``h``-level residential-degree
hierarchy after every update.  ``h = 2`` is the classic PVLDB'13 traversal
algorithm (``mcd`` + ``pcd``); larger ``h`` prunes the insertion search
harder at a steeper index-maintenance price, exactly the trade-off in
Table II of the paper.
"""

from __future__ import annotations

from collections import ChainMap
from typing import Hashable, Mapping

from repro.core.decomposition import core_numbers
from repro.engine.base import CoreMaintainer, UpdateResult
from repro.graphs.undirected import DynamicGraph
from repro.traversal.degrees import DegreeHierarchy
from repro.traversal.insertion import traversal_insert_search
from repro.traversal.removal import traversal_remove_search

Vertex = Hashable


class TraversalCoreMaintainer(CoreMaintainer):
    """Sariyüce et al.'s traversal algorithm, parameterized by hop count.

    Parameters
    ----------
    graph:
        Graph to take ownership of.
    h:
        Hop count (>= 2).  The engine maintains ``r_1 .. r_h`` where
        ``r_1 = mcd`` and ``r_2 = pcd``; the insertion DFS prunes with
        ``r_{h-1}`` and seeds candidate degrees with ``r_h``.
    audit:
        When true, the hierarchy is audited after every update (tests).
    """

    def __init__(self, graph: DynamicGraph, h: int = 2, audit: bool = False) -> None:
        if h < 2:
            raise ValueError("traversal algorithm needs h >= 2 (mcd + pcd)")
        super().__init__(graph)
        self.h = h
        self.name = f"trav-{h}"
        self._audit = audit
        self._core: dict[Vertex, int] = core_numbers(graph)
        self.hierarchy = DegreeHierarchy(graph, self._core, depth=h)
        #: Total hierarchy value recomputations — the maintenance cost.
        self.maintenance_work = 0

    @property
    def core(self) -> Mapping[Vertex, int]:
        return self._core

    @property
    def mcd(self) -> Mapping[Vertex, int]:
        return self.hierarchy.mcd

    @property
    def pcd(self) -> Mapping[Vertex, int]:
        """``r_2`` (only meaningful for ``h >= 2``, which is always)."""
        return self.hierarchy.levels[1]

    # ------------------------------------------------------------------

    def add_vertex(self, vertex: Vertex) -> bool:
        if not self._graph.add_vertex(vertex):
            return False
        self._core[vertex] = 0
        self.hierarchy.register_vertex(vertex)
        return True

    def insert_edge(self, u: Vertex, v: Vertex) -> UpdateResult:
        for endpoint in (u, v):
            self.add_vertex(endpoint)
        self._graph.add_edge(u, v)
        # Refresh the hierarchy for the new edge *before* searching: the
        # DFS relies on current mcd/pcd values (Section IV-A).
        self.maintenance_work += self.hierarchy.refresh(
            self._core, changed_core=(), endpoints=(u, v)
        )
        root = u if self._core[u] <= self._core[v] else v
        k = self._core[root]
        v_star, visited, evicted = traversal_insert_search(
            self._graph, self._core, self.hierarchy, root, k
        )
        for w in v_star:
            self._core[w] = k + 1
        self.maintenance_work += self.hierarchy.refresh(
            self._core, changed_core=v_star
        )
        if self._audit:
            self.check()
        return UpdateResult(
            "insert", (u, v), k, tuple(v_star), visited, evicted
        )

    def remove_edge(self, u: Vertex, v: Vertex) -> UpdateResult:
        cu, cv = self._core[u], self._core[v]
        k = min(cu, cv)
        self._graph.remove_edge(u, v)
        # The cascade needs post-removal mcd bounds for the endpoints, but
        # the hierarchy itself must keep its *old* values until refresh()
        # runs, otherwise the delta detection cannot see that they changed.
        stored = self.hierarchy.mcd
        patch: dict[Vertex, int] = {}
        if cu <= cv:
            patch[u] = stored[u] - 1
        if cv <= cu:
            patch[v] = stored[v] - 1
        mcd = ChainMap(patch, stored)
        if cu < cv:
            roots: tuple[Vertex, ...] = (u,)
        elif cv < cu:
            roots = (v,)
        else:
            roots = (u, v)
        v_star, visited = traversal_remove_search(
            self._graph, self._core, mcd, roots, k
        )
        self.maintenance_work += self.hierarchy.refresh(
            self._core, changed_core=v_star, endpoints=(u, v)
        )
        if self._audit:
            self.check()
        return UpdateResult("remove", (u, v), k, tuple(v_star), visited)

    # ------------------------------------------------------------------

    def _forget_vertex(self, vertex: Vertex) -> None:
        self._core.pop(vertex, None)
        self.hierarchy.forget_vertex(vertex)

    def check(self) -> None:
        """Audit the hierarchy (tests)."""
        self.hierarchy.check(self._core)

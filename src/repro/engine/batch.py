"""The batch update pipeline: :class:`Batch` in, :class:`BatchResult` out.

The paper's algorithms process one edge at a time, but every realistic
deployment (sliding windows, grouped replays, bulk loads) produces
*batches* of mixed insertions and removals.  A :class:`Batch` is the
validated, normalized unit of work every engine accepts through
:meth:`repro.engine.base.CoreMaintainer.apply_batch`:

* edges are normalized to a stable canonical orientation (see
  :func:`normalize_edge` — identity never depends on ``repr`` formatting
  for comparable vertices);
* exact duplicate operations are dropped (re-inserting an edge whose
  pending operation is already an insert is a no-op, not an error);
* self loops and unknown kinds are rejected at construction time.

Engines are free to *reschedule* a batch as long as the final graph (and
therefore the final core numbers) is unchanged: when no edge appears with
both kinds, insertions commute with removals of other edges, so
:meth:`Batch.runs` can regroup the ops into one removal run followed by
one insertion run — the schedule that lets the order-based engine
coalesce its ``mcd`` repair per run instead of per edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator, Optional, Sequence

from repro.errors import BatchError, SelfLoopError

Vertex = Hashable
Edge = tuple[Vertex, Vertex]

INSERT = "insert"
REMOVE = "remove"
_KINDS = (INSERT, REMOVE)


def normalize_edge(u: Vertex, v: Vertex) -> Edge:
    """Canonical orientation of an undirected edge.

    Prefers the vertices' own ordering (``u < v``); for incomparable or
    mixed-type vertices it falls back to the stable key
    ``(type name, repr)``.  Equal endpoints (self loops) raise
    :class:`~repro.errors.SelfLoopError`.  Unlike ordering by bare
    ``repr``, equal vertices always normalize identically regardless of
    how their ``repr`` is formatted.
    """
    if u == v:
        raise SelfLoopError(u)
    try:
        if u < v:
            return (u, v)
        if v < u:
            return (v, u)
    except TypeError:
        pass
    ku = (type(u).__name__, repr(u))
    kv = (type(v).__name__, repr(v))
    return (u, v) if ku <= kv else (v, u)


@dataclass(frozen=True)
class BatchOp:
    """One operation of a batch: ``kind`` is ``"insert"`` or ``"remove"``."""

    kind: str
    edge: Edge


class Batch:
    """An ordered, validated, deduplicated collection of edge updates.

    Parameters
    ----------
    ops:
        Iterable of ``(kind, (u, v))`` pairs — or :class:`BatchOp`
        instances, so ``Batch(other.ops)`` round-trips — applied in
        order.

    Construction normalizes every edge and drops *exact duplicates*: an
    operation whose kind equals the pending (most recent) operation on the
    same edge.  Opposite-kind sequences (insert, then remove, then insert
    again …) are all kept — they are legitimate histories.

    >>> batch = Batch([("insert", (1, 2)), ("insert", (2, 1))])
    >>> len(batch)
    1
    >>> batch = Batch.inserts([(1, 2)]).remove(1, 2).insert(1, 2)
    >>> [op.kind for op in batch]
    ['insert', 'remove', 'insert']
    """

    __slots__ = ("_ops", "_last_kind")

    def __init__(self, ops: Iterable = ()) -> None:
        self._ops: list[BatchOp] = []
        self._last_kind: dict[Edge, str] = {}
        for op in ops:
            if isinstance(op, BatchOp):
                kind, (u, v) = op.kind, op.edge
            else:
                kind, (u, v) = op
            self._append(kind, u, v)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def inserts(cls, edges: Iterable[Edge]) -> "Batch":
        """A batch of insertions only (bulk-load shape)."""
        return cls((INSERT, e) for e in edges)

    @classmethod
    def removes(cls, edges: Iterable[Edge]) -> "Batch":
        """A batch of removals only (window-expiry shape)."""
        return cls((REMOVE, e) for e in edges)

    def insert(self, u: Vertex, v: Vertex) -> "Batch":
        """Append an insertion; returns ``self`` for chaining."""
        self._append(INSERT, u, v)
        return self

    def remove(self, u: Vertex, v: Vertex) -> "Batch":
        """Append a removal; returns ``self`` for chaining."""
        self._append(REMOVE, u, v)
        return self

    def _append(self, kind: str, u: Vertex, v: Vertex) -> None:
        if kind not in _KINDS:
            raise BatchError(
                f"batch op kind must be 'insert' or 'remove', got {kind!r}"
            )
        edge = normalize_edge(u, v)
        if self._last_kind.get(edge) == kind:
            return  # exact duplicate of the pending op on this edge
        self._last_kind[edge] = kind
        self._ops.append(BatchOp(kind, edge))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def ops(self) -> tuple[BatchOp, ...]:
        return tuple(self._ops)

    def __len__(self) -> int:
        return len(self._ops)

    def __bool__(self) -> bool:
        return bool(self._ops)

    def __iter__(self) -> Iterator[BatchOp]:
        return iter(self._ops)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        i, r = self.counts()
        return f"Batch({i} inserts, {r} removes)"

    def counts(self) -> tuple[int, int]:
        """``(#inserts, #removes)`` of the batch."""
        inserts = sum(1 for op in self._ops if op.kind == INSERT)
        return inserts, len(self._ops) - inserts

    def edges(self, kind: str) -> list[Edge]:
        """The edges of every op of ``kind``, in batch order."""
        return [op.edge for op in self._ops if op.kind == kind]

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def conflicting_edges(self) -> set[Edge]:
        """Edges that appear with *both* kinds (must keep relative order)."""
        seen: dict[Edge, str] = {}
        conflicts: set[Edge] = set()
        for op in self._ops:
            prior = seen.setdefault(op.edge, op.kind)
            if prior != op.kind:
                conflicts.add(op.edge)
        return conflicts

    def runs(self, reorder: bool = True) -> list[tuple[str, list[Edge]]]:
        """Maximal same-kind runs, the unit engines coalesce repair over.

        With ``reorder=True`` (the default) and no edge appearing with
        both kinds, the batch is rescheduled as one removal run followed
        by one insertion run: insertions and removals of *distinct* edges
        commute, so the final graph is identical and engines get the
        longest possible runs.  Removals go first because they are
        cheapest on the sparsest graph (before the batch's insertions
        land), and the insertion run's coalesced repair cost does not
        depend on its position.  Conflicting batches (some edge inserted
        *and* removed) keep their natural op order.
        """
        if not self._ops:
            return []
        if reorder and not self.conflicting_edges():
            runs = []
            inserts = self.edges(INSERT)
            removes = self.edges(REMOVE)
            if removes:
                runs.append((REMOVE, removes))
            if inserts:
                runs.append((INSERT, inserts))
            return runs
        runs = []
        current_kind = self._ops[0].kind
        current: list[Edge] = []
        for op in self._ops:
            if op.kind != current_kind:
                runs.append((current_kind, current))
                current_kind, current = op.kind, []
            current.append(op.edge)
        runs.append((current_kind, current))
        return runs


@dataclass
class BatchResult:
    """Aggregate outcome of applying one :class:`Batch`.

    Attributes
    ----------
    engine:
        Name of the engine that applied the batch.
    inserts / removes:
        Number of operations applied per kind.
    changed:
        Net core-number delta per vertex over the whole batch; vertices
        whose core ended where it started are omitted.
    visited:
        Total search-space size (sum of per-update ``|V+|`` / ``|V'|``,
        or one ``n`` per recomputation for the naive engine).
    seconds:
        Wall time spent inside ``apply_batch``.
    results:
        Per-operation :class:`~repro.engine.base.UpdateResult` detail when
        the engine's schedule can attribute changes to individual edges;
        ``None`` for fully coalesced paths (naive recompute).
    counters:
        Per-batch instrumentation deltas reported by the engine — for the
        order engine: ``order_queries``, ``relabels``, ``rank_walk_steps``
        (the sequence-backend stats) and ``mcd_recomputations``; empty for
        engines without counters.
    """

    engine: str
    inserts: int
    removes: int
    changed: dict[Vertex, int] = field(default_factory=dict)
    visited: int = 0
    seconds: float = 0.0
    results: Optional[list] = None
    counters: dict = field(default_factory=dict)

    @property
    def ops(self) -> int:
        return self.inserts + self.removes

    @property
    def total_changed(self) -> int:
        """``|V*|`` of the batch: vertices with a net core change."""
        return len(self.changed)

    @property
    def vertex_changes(self) -> int:
        """Total per-operation core changes (promotions + demotions).

        Falls back to net deltas when per-operation detail is unavailable.
        """
        if self.results is not None:
            return sum(len(r.changed) for r in self.results)
        return sum(abs(d) for d in self.changed.values())


def net_changes(results: Sequence) -> dict[Vertex, int]:
    """Fold per-update results into net core deltas, dropping zeros."""
    changed: dict[Vertex, int] = {}
    for result in results:
        delta = result.delta
        for vertex in result.changed:
            total = changed.get(vertex, 0) + delta
            if total:
                changed[vertex] = total
            else:
                changed.pop(vertex, None)
    return changed

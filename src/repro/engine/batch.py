"""The batch update pipeline: :class:`Batch` in, :class:`BatchResult` out.

The paper's algorithms process one edge at a time, but every realistic
deployment (sliding windows, grouped replays, bulk loads) produces
*batches* of mixed insertions and removals.  A :class:`Batch` is the
validated, normalized unit of work every engine accepts through
:meth:`repro.engine.base.CoreMaintainer.apply_batch`:

* edges are normalized to a stable canonical orientation (see
  :func:`normalize_edge` — identity never depends on ``repr`` formatting
  for comparable vertices);
* exact duplicate operations are dropped (re-inserting an edge whose
  pending operation is already an insert is a no-op, not an error);
* self loops and unknown kinds are rejected at construction time.

Engines are free to *reschedule* a batch as long as the final graph (and
therefore the final core numbers) is unchanged: when no edge appears with
both kinds, insertions commute with removals of other edges, so
:meth:`Batch.runs` can regroup the ops into one removal run followed by
one insertion run — the schedule that lets the order-based engine
coalesce its ``mcd`` repair per run instead of per edge.

Beyond run regrouping, :meth:`Batch.partition` splits a batch into
*independent regions* (in the spirit of Wang et al. 2017's observation
that disjoint update regions commute): connected components of the
touched subgraph — the batch's edges plus the existing graph's paths
between batch vertices — optionally refined by core levels so that
high-core "walls" no cascade can cross do not glue otherwise-unrelated
updates together.  Regions preserve per-edge op order (every op on one
edge lands in one region), so applying the regions in any order yields
the same final graph, and therefore the same final core numbers, as the
original batch; engines schedule regions sequentially or in parallel and
report ``regions`` / ``region_max_size`` in ``BatchResult.counters``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator, Optional, Sequence

from repro.errors import BatchError, SelfLoopError

Vertex = Hashable
Edge = tuple[Vertex, Vertex]

INSERT = "insert"
REMOVE = "remove"
_KINDS = (INSERT, REMOVE)


def vertex_sort_key(vertex: Vertex) -> tuple[str, str]:
    """A total-order key over arbitrary (possibly mixed-type) vertices.

    ``(type name, repr)`` — stable across runs and comparable between any
    two vertices, which raw vertex comparison is not.  Shared by edge
    normalization, deterministic event ordering
    (:mod:`repro.service.events`) and top-``n`` tie-breaking
    (:func:`repro.analysis.kcore_views.top_cores`).
    """
    return (type(vertex).__name__, repr(vertex))


def normalize_edge(u: Vertex, v: Vertex) -> Edge:
    """Canonical orientation of an undirected edge.

    Prefers the vertices' own ordering (``u < v``); for incomparable or
    mixed-type vertices it falls back to the stable
    :func:`vertex_sort_key`.  Equal endpoints (self loops) raise
    :class:`~repro.errors.SelfLoopError`.  Unlike ordering by bare
    ``repr``, equal vertices always normalize identically regardless of
    how their ``repr`` is formatted.
    """
    if u == v:
        raise SelfLoopError(u)
    try:
        if u < v:
            return (u, v)
        if v < u:
            return (v, u)
    except TypeError:
        pass
    return (u, v) if vertex_sort_key(u) <= vertex_sort_key(v) else (v, u)


@dataclass(frozen=True)
class BatchOp:
    """One operation of a batch: ``kind`` is ``"insert"`` or ``"remove"``."""

    kind: str
    edge: Edge


class Batch:
    """An ordered, validated, deduplicated collection of edge updates.

    Parameters
    ----------
    ops:
        Iterable of ``(kind, (u, v))`` pairs — or :class:`BatchOp`
        instances, so ``Batch(other.ops)`` round-trips — applied in
        order.

    Construction normalizes every edge and drops *exact duplicates*: an
    operation whose kind equals the pending (most recent) operation on the
    same edge.  Opposite-kind sequences (insert, then remove, then insert
    again …) are all kept — they are legitimate histories.

    >>> batch = Batch([("insert", (1, 2)), ("insert", (2, 1))])
    >>> len(batch)
    1
    >>> batch = Batch.inserts([(1, 2)]).remove(1, 2).insert(1, 2)
    >>> [op.kind for op in batch]
    ['insert', 'remove', 'insert']
    """

    __slots__ = ("_ops", "_last_kind", "_n_inserts")

    def __init__(self, ops: Iterable = ()) -> None:
        self._ops: list[BatchOp] = []
        self._last_kind: dict[Edge, str] = {}
        self._n_inserts = 0
        for op in ops:
            if isinstance(op, BatchOp):
                kind, (u, v) = op.kind, op.edge
            else:
                kind, (u, v) = op
            self._append(kind, u, v)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def inserts(cls, edges: Iterable[Edge]) -> "Batch":
        """A batch of insertions only (bulk-load shape)."""
        return cls((INSERT, e) for e in edges)

    @classmethod
    def removes(cls, edges: Iterable[Edge]) -> "Batch":
        """A batch of removals only (window-expiry shape)."""
        return cls((REMOVE, e) for e in edges)

    def insert(self, u: Vertex, v: Vertex) -> "Batch":
        """Append an insertion; returns ``self`` for chaining."""
        self._append(INSERT, u, v)
        return self

    def remove(self, u: Vertex, v: Vertex) -> "Batch":
        """Append a removal; returns ``self`` for chaining."""
        self._append(REMOVE, u, v)
        return self

    def _append(self, kind: str, u: Vertex, v: Vertex) -> None:
        if kind not in _KINDS:
            raise BatchError(
                f"batch op kind must be 'insert' or 'remove', got {kind!r}"
            )
        edge = normalize_edge(u, v)
        if self._last_kind.get(edge) == kind:
            return  # exact duplicate of the pending op on this edge
        self._last_kind[edge] = kind
        self._ops.append(BatchOp(kind, edge))
        if kind == INSERT:
            self._n_inserts += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def ops(self) -> tuple[BatchOp, ...]:
        return tuple(self._ops)

    def __len__(self) -> int:
        return len(self._ops)

    def __bool__(self) -> bool:
        return bool(self._ops)

    def __iter__(self) -> Iterator[BatchOp]:
        return iter(self._ops)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        i, r = self.counts()
        return f"Batch({i} inserts, {r} removes)"

    def counts(self) -> tuple[int, int]:
        """``(#inserts, #removes)`` of the batch.

        O(1): the counts are maintained by ``_append`` rather than
        re-scanned — ``__repr__`` and per-batch reporting call this on
        every batch, which used to cost a full pass over the ops.
        """
        return self._n_inserts, len(self._ops) - self._n_inserts

    def edges(self, kind: str) -> list[Edge]:
        """The edges of every op of ``kind``, in batch order."""
        return [op.edge for op in self._ops if op.kind == kind]

    def check_applicable(self, graph) -> None:
        """Raise :class:`~repro.errors.BatchError` unless every op is
        valid when the batch is replayed in op order against ``graph``.

        An insert must target an absent edge, a removal a present one —
        tracked through the batch's own earlier ops, so histories like
        remove-then-reinsert validate correctly.  O(len(batch)) adjacency
        lookups.  The service façade calls this before every commit so
        an invalid op aborts the whole batch instead of landing a prefix
        of it; raw ``engine.apply_batch`` callers who want the same
        atomicity call it themselves (engines keep their documented
        partial-failure semantics on mid-batch errors).
        """
        overlay: dict[Edge, bool] = {}
        for op in self._ops:
            edge = op.edge
            present = (
                overlay[edge] if edge in overlay else graph.has_edge(*edge)
            )
            if op.kind == INSERT:
                if present:
                    raise BatchError(
                        f"batch inserts edge {edge!r} which is already "
                        "in the graph"
                    )
            elif not present:
                raise BatchError(
                    f"batch removes edge {edge!r} which is not in the graph"
                )
            overlay[edge] = op.kind == INSERT

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def conflicting_edges(self) -> set[Edge]:
        """Edges that appear with *both* kinds (must keep relative order)."""
        seen: dict[Edge, str] = {}
        conflicts: set[Edge] = set()
        for op in self._ops:
            prior = seen.setdefault(op.edge, op.kind)
            if prior != op.kind:
                conflicts.add(op.edge)
        return conflicts

    def runs(self, reorder: bool = True) -> list[tuple[str, list[Edge]]]:
        """Maximal same-kind runs, the unit engines coalesce repair over.

        With ``reorder=True`` (the default) and no edge appearing with
        both kinds, the batch is rescheduled as one removal run followed
        by one insertion run: insertions and removals of *distinct* edges
        commute, so the final graph is identical and engines get the
        longest possible runs.  Removals go first because they are
        cheapest on the sparsest graph (before the batch's insertions
        land), and the insertion run's coalesced repair cost does not
        depend on its position.  Conflicting batches (some edge inserted
        *and* removed) keep their natural op order.

        >>> batch = Batch([("insert", (1, 2)), ("remove", (3, 4)),
        ...                ("insert", (5, 6))])
        >>> batch.runs()
        [('remove', [(3, 4)]), ('insert', [(1, 2), (5, 6)])]
        >>> batch.runs(reorder=False)
        [('insert', [(1, 2)]), ('remove', [(3, 4)]), ('insert', [(5, 6)])]
        """
        if not self._ops:
            return []
        if reorder and not self.conflicting_edges():
            runs = []
            inserts = self.edges(INSERT)
            removes = self.edges(REMOVE)
            if removes:
                runs.append((REMOVE, removes))
            if inserts:
                runs.append((INSERT, inserts))
            return runs
        runs = []
        current_kind = self._ops[0].kind
        current: list[Edge] = []
        for op in self._ops:
            if op.kind != current_kind:
                runs.append((current_kind, current))
                current_kind, current = op.kind, []
            current.append(op.edge)
        runs.append((current_kind, current))
        return runs

    def partition(self, graph, core=None) -> list["Batch"]:
        """Split the batch into independent region sub-batches.

        Two ops belong to the same region when their edges are connected
        in the *touched subgraph*: the batch's own edges plus every path
        of ``graph`` (any object with an ``adj`` vertex-to-neighbors
        mapping) between batch vertices.  With ``core`` (a vertex ->
        core-number mapping) the connectivity walk is refined by affected
        levels: it only passes *through* vertices whose core number is at
        most ``max(min(core(u), core(v))) + 1`` over the batch's edges.
        Removal cascades can only travel below that cap (demotions go
        downward from each edge's level), and so do insertion cascades
        seeded at the *current* levels — though a dense enough insertion
        batch can compound promotions past the cap, so the refinement is
        a granularity heuristic, not a proof of independence.  Batch
        vertices themselves always conduct (their own counters are
        touched regardless of level).

        Every op of one edge lands in one region with its relative order
        preserved, so applying the regions in any order produces the same
        final graph — and core numbers are a function of that graph —
        as applying the original batch.  The scheduler's correctness
        therefore never depends on the refinement; the cap only keeps the
        regions fine-grained.  Cost: one walk over the components that
        contain batch vertices (worst case ``O(n + m)``), which is why
        engines partition only on request.

        Returns the regions ordered by their first op's position in the
        batch; a batch whose ops are all connected returns ``[self]``-
        equivalent single region.

        >>> from repro.graphs.undirected import DynamicGraph
        >>> graph = DynamicGraph([(0, 1), (1, 2), (10, 11)])
        >>> regions = Batch.removes([(0, 1), (10, 11)]).partition(graph)
        >>> [[op.edge for op in region] for region in regions]
        [[(0, 1)], [(10, 11)]]
        """
        if not self._ops:
            return []
        parent: dict[Vertex, Vertex] = {}

        def find(x: Vertex) -> Vertex:
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:
                parent[x], x = root, parent[x]
            return root

        def union(a: Vertex, b: Vertex) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[rb] = ra

        batch_vertices: set[Vertex] = set()
        for op in self._ops:
            u, v = op.edge
            for x in (u, v):
                if x not in parent:
                    parent[x] = x
                    batch_vertices.add(x)
            union(u, v)

        cap = None
        if core is not None:
            cap = 1 + max(
                min(core.get(u, 0), core.get(v, 0))
                for u, v in (op.edge for op in self._ops)
            )

        adj = graph.adj
        visited: set[Vertex] = set()
        # Only batch vertices trigger unions, so the walk can stop as
        # soon as every graph-resident batch vertex has been visited —
        # without this, a tight batch inside a large component would pay
        # the whole component's O(n + m) on every partition call.
        pending = {v for v in batch_vertices if v in adj}
        for source in list(pending):
            if not pending:
                break
            if source in visited:
                continue
            visited.add(source)
            pending.discard(source)
            stack = [source]
            while stack and pending:
                x = stack.pop()
                for y in adj[x]:
                    if y in visited:
                        continue
                    if y in batch_vertices:
                        parent.setdefault(y, y)
                        union(source, y)
                        visited.add(y)
                        pending.discard(y)
                        stack.append(y)
                    elif cap is None or core.get(y, 0) <= cap:
                        visited.add(y)
                        stack.append(y)

        groups: dict[Vertex, list[BatchOp]] = {}
        for op in self._ops:
            groups.setdefault(find(op.edge[0]), []).append(op)
        return [Batch(ops) for ops in groups.values()]


@dataclass
class BatchResult:
    """Aggregate outcome of applying one :class:`Batch`.

    Attributes
    ----------
    engine:
        Name of the engine that applied the batch.
    inserts / removes:
        Number of operations applied per kind.
    changed:
        Net core-number delta per vertex over the whole batch; vertices
        whose core ended where it started are omitted.
    visited:
        Total search-space size (sum of per-update ``|V+|`` / ``|V'|``,
        or one ``n`` per recomputation for the naive engine).
    seconds:
        Wall time spent inside ``apply_batch``.
    results:
        Per-operation :class:`~repro.engine.base.UpdateResult` detail when
        the engine's schedule can attribute changes to individual edges;
        ``None`` for fully coalesced paths (naive recompute, and any
        order-engine batch containing a removal run — removal runs share
        one joint cascade, so per-edge attribution no longer exists).
    counters:
        Per-batch instrumentation deltas reported by the engine — for the
        order engine: ``order_queries``, ``relabels``, ``rank_walk_steps``
        (the sequence-backend stats), ``mcd_recomputations``
        (``candidate_visits`` on the simplified engine, which has no
        ``mcd``), plus the schedule's ``regions`` / ``region_max_size``;
        empty for engines without counters.  Counters the engine's
        machinery never touched are omitted, not zero-filled: a missing
        key means "this engine never ran that code", a ``0`` means "ran
        this batch and did nothing".
    """

    engine: str
    inserts: int
    removes: int
    changed: dict[Vertex, int] = field(default_factory=dict)
    visited: int = 0
    seconds: float = 0.0
    results: Optional[list] = None
    counters: dict = field(default_factory=dict)

    @property
    def ops(self) -> int:
        return self.inserts + self.removes

    @property
    def total_changed(self) -> int:
        """``|V*|`` of the batch: vertices with a net core change."""
        return len(self.changed)

    @property
    def vertex_changes(self) -> int:
        """Total per-operation core changes (promotions + demotions).

        Falls back to net deltas when per-operation detail is unavailable.
        """
        if self.results is not None:
            return sum(len(r.changed) for r in self.results)
        return sum(abs(d) for d in self.changed.values())


def merge_deltas(changed: dict, deltas: Iterable) -> dict:
    """Fold ``(vertex, delta)`` pairs into ``changed`` in place, dropping
    vertices whose net delta reaches zero.  Returns ``changed``.

    The one definition of the accumulate-and-drop-zeros rule shared by
    :func:`net_changes` and the engines' region/run aggregation.
    """
    for vertex, delta in deltas:
        total = changed.get(vertex, 0) + delta
        if total:
            changed[vertex] = total
        else:
            changed.pop(vertex, None)
    return changed


def net_changes(results: Sequence) -> dict[Vertex, int]:
    """Fold per-update results into net core deltas, dropping zeros."""
    changed: dict[Vertex, int] = {}
    for result in results:
        merge_deltas(
            changed, ((vertex, result.delta) for vertex in result.changed)
        )
    return changed

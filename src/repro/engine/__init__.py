"""The engine layer: shared interface, batch pipeline, and registry.

Everything a consumer needs to maintain core numbers lives here:

* :class:`~repro.engine.base.CoreMaintainer` /
  :class:`~repro.engine.base.UpdateResult` — the engine interface and
  per-update outcome;
* :class:`~repro.engine.batch.Batch` /
  :class:`~repro.engine.batch.BatchResult` — the mixed insert/remove
  batch pipeline (`engine.apply_batch(batch)`);
* :func:`~repro.engine.registry.make_engine` — build any engine by name
  (``"order"``, ``"trav-<h>"``, ``"naive"``);
  :func:`~repro.engine.registry.register_engine` plugs in new ones.
"""

from repro.engine.base import CoreMaintainer, UpdateResult
from repro.engine.batch import Batch, BatchOp, BatchResult, normalize_edge
from repro.engine.registry import (
    available_engines,
    is_engine_name,
    make_engine,
    register_engine,
)

__all__ = [
    "Batch",
    "BatchOp",
    "BatchResult",
    "CoreMaintainer",
    "UpdateResult",
    "available_engines",
    "is_engine_name",
    "make_engine",
    "normalize_edge",
    "register_engine",
]

"""The engine layer: shared interface, batch pipeline, and registry.

This is the *extension* surface — implement
:class:`~repro.engine.base.CoreMaintainer`, plug it in with
:func:`~repro.engine.registry.register_engine`, and every consumer can
reach it by name.  Applications should not drive engines directly:
:class:`repro.service.CoreService` is the public entry point (sessions,
transactions, queries, event subscriptions) and wraps any engine built
here.

What lives here:

* :class:`~repro.engine.base.CoreMaintainer` /
  :class:`~repro.engine.base.UpdateResult` — the engine interface and
  per-update outcome;
* :class:`~repro.engine.batch.Batch` /
  :class:`~repro.engine.batch.BatchResult` — the mixed insert/remove
  batch pipeline (`engine.apply_batch(batch)`);
* :func:`~repro.engine.registry.make_engine` — build any engine by name
  (``"order"``, ``"trav-<h>"``, ``"naive"``), rejecting options the
  engine does not understand (:func:`~repro.engine.registry.engine_options`
  lists what each accepts); :func:`~repro.engine.registry.register_engine`
  plugs in new ones.
"""

from repro.engine.base import CoreMaintainer, UpdateResult
from repro.engine.batch import (
    Batch,
    BatchOp,
    BatchResult,
    normalize_edge,
    vertex_sort_key,
)
from repro.engine.registry import (
    DEFAULT_ENGINE,
    available_engines,
    engine_options,
    is_engine_name,
    make_engine,
    register_engine,
)

__all__ = [
    "Batch",
    "BatchOp",
    "BatchResult",
    "CoreMaintainer",
    "DEFAULT_ENGINE",
    "UpdateResult",
    "available_engines",
    "engine_options",
    "is_engine_name",
    "make_engine",
    "normalize_edge",
    "register_engine",
    "vertex_sort_key",
]

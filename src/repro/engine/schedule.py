"""Run/region batch scheduler shared by the order-family engines.

:class:`RunScheduledMaintainer` factors the PR-3 batch pipeline out of
the default order engine so every order-family maintainer — the
``mcd``-maintaining :class:`~repro.core.maintainer.OrderedCoreMaintainer`
and the Guo–Sekerinski
:class:`~repro.core.simplified.SimplifiedCoreMaintainer` — shares one
schedule and differs only in how a *run* commits:

* :meth:`~RunScheduledMaintainer.apply_batch` optionally partitions the
  batch into independent regions (:meth:`~repro.engine.batch.Batch.partition`)
  and applies them sequentially or from a thread pool behind an
  engine-wide region lock;
* each region is replayed as same-kind runs
  (:meth:`~repro.engine.batch.Batch.runs`), dispatched to the subclass
  hooks :meth:`~RunScheduledMaintainer._insert_run` (returns per-op
  :class:`~repro.engine.base.UpdateResult` s) and
  :meth:`~RunScheduledMaintainer._remove_run` (returns one coalesced
  run result with ``changed`` / ``visited`` aggregates — duck-typed;
  the order family uses
  :class:`~repro.core.removal.RemovalRunResult`);
* aggregation enforces the shared contracts: ``results`` keeps per-op
  detail only for removal-free batches (``results=None`` otherwise),
  per-op results are restored to batch op order under a partitioned
  schedule, and ``BatchResult.counters`` always reports the schedule's
  ``regions`` / ``region_max_size``.

The module lives in :mod:`repro.engine` (not :mod:`repro.core`) because
it knows nothing about any particular index: it only needs the
:class:`~repro.engine.base.CoreMaintainer` surface plus the two run
hooks.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Hashable, Iterable, Optional

from repro.engine.base import CoreMaintainer, UpdateResult
from repro.engine.batch import Batch, BatchResult, merge_deltas, net_changes
from repro.testing.faults import inject

Vertex = Hashable


class RunScheduledMaintainer(CoreMaintainer):
    """Batch scheduling shared by the order-family engines.

    Subclasses implement :meth:`_insert_run` / :meth:`_remove_run` (the
    family-specific coalesced commits) and may set the engine-level
    scheduler defaults ``_batch_partition`` / ``_batch_parallel`` from
    their constructors.
    """

    #: Scheduler defaults, class-level so engines restored from
    #: snapshots (which bypass ``__init__``) get them too.
    _batch_partition = False
    _batch_parallel: Optional[int] = None

    def insert_edges_bulk(self, edges: Iterable) -> list[UpdateResult]:
        """Bulk load: thin wrapper over :meth:`apply_batch`.

        Kept for compatibility with the original insert-only bulk API;
        equivalent to ``apply_batch(Batch.inserts(edges)).results``.
        Batch semantics apply: duplicate input edges are dropped rather
        than raising, and each result's ``edge`` carries the normalized
        orientation — so zip results with the *deduplicated* batch ops,
        not the raw input, when inputs may repeat.  Partitioning is
        pinned off: a bulk load is one logical run, so the partition
        walk would be pure overhead here.
        """
        return self.apply_batch(
            Batch.inserts(edges), partition=False, parallel=0
        ).results

    def apply_batch(
        self,
        batch: Batch,
        partition: Optional[bool] = None,
        parallel: Optional[int] = None,
    ) -> BatchResult:
        """Apply a mixed batch, coalescing index repair per run.

        :meth:`Batch.runs` reorders conflict-free batches into one
        removal run followed by one insertion run, so a long mixed batch
        pays one coalesced commit per side: insertion runs go through
        :meth:`_insert_run` (per-op results kept), removal runs through
        :meth:`_remove_run` (one aggregate result per run — batch-native
        joint cascades, see :func:`repro.core.removal.order_remove_run`
        and :func:`repro.core.simplified.simplified_remove_run`).

        Scheduling: with ``partition`` (per-call override of the engine
        default) the batch is first split into independent regions by
        :meth:`~repro.engine.batch.Batch.partition` and the regions are
        applied one by one — correct under any region order because core
        numbers are a function of the final graph and every region
        application restores the full index invariants.  ``parallel``
        (worker count; implies partitioning unless ``partition=False``
        is passed explicitly) applies regions from a
        thread pool; the k-order blocks are shared across regions, so
        each worker holds an engine-wide region lock while it applies —
        in CPython this (like the GIL) serializes index mutation, making
        ``parallel=`` a scheduling seam and an agreement harness for
        region scheduling rather than a wall-clock win today.  True
        parallelism needs per-region engine state (see the sharded
        engine).

        ``BatchResult.results`` keeps per-op detail only for batches
        without removals: removal runs are fully coalesced, so per-edge
        attribution no longer exists (``changed``/``visited`` stay
        exact, aggregated at run level).  When results are kept they are
        restored to the batch's op order even under a partitioned
        schedule, so zipping them with the batch's ops stays valid.
        ``BatchResult.counters`` always reports the schedule's
        ``regions`` and ``region_max_size``.
        """
        started = time.perf_counter()
        baseline = self._batch_counters()
        if parallel is None:
            parallel = self._batch_parallel
        if partition is None:
            # parallel implies partitioning — but an explicit
            # partition=False wins (the pool then sees one region and
            # degrades to the sequential path).
            partition = self._batch_partition or bool(parallel)
        if partition and len(batch) > 1:
            regions = batch.partition(self._graph, core=self._core)
        else:
            regions = [batch] if batch else []
        if parallel and len(regions) > 1:
            lock = threading.Lock()
            with ThreadPoolExecutor(max_workers=parallel) as pool:
                outcomes = list(
                    pool.map(lambda r: self._apply_region(r, lock), regions)
                )
        else:
            outcomes = [self._apply_region(region) for region in regions]

        inserts = removes = visited = 0
        results: Optional[list[UpdateResult]] = []
        changed: dict[Vertex, int] = {}
        for region_results, removal_runs, n_ins, n_rem in outcomes:
            inserts += n_ins
            removes += n_rem
            visited += sum(r.visited for r in region_results)
            if removal_runs:
                results = None
            if results is not None:
                results.extend(region_results)
            merge_deltas(changed, net_changes(region_results).items())
            for run in removal_runs:
                visited += run.visited
                merge_deltas(changed, run.changed.items())
        if results is not None and len(regions) > 1:
            # Results are kept only for removal-free batches, whose
            # deduplicated ops have unique edges: restore batch op order
            # so the documented zip-with-ops contract survives regions.
            positions = {op.edge: i for i, op in enumerate(batch)}
            results.sort(key=lambda r: positions[r.edge])
        counters = self._counter_deltas(baseline)
        counters["regions"] = len(regions)
        counters["region_max_size"] = max(
            (len(region) for region in regions), default=0
        )
        return BatchResult(
            engine=self.name,
            inserts=inserts,
            removes=removes,
            changed=changed,
            visited=visited,
            seconds=time.perf_counter() - started,
            results=results,
            counters=counters,
        )

    def _apply_region(
        self, region: Batch, lock: Optional[threading.Lock] = None
    ) -> tuple[list[UpdateResult], list, int, int]:
        """Apply one region's runs; returns per-op insert results, the
        coalesced removal-run results, and the op counts."""
        if lock is not None:
            with lock:
                return self._apply_region(region)
        results: list[UpdateResult] = []
        removal_runs: list = []
        inserts = removes = 0
        for kind, run_edges in region.runs():
            inject("engine.mid_batch")
            if kind == "insert":
                results.extend(self._insert_run(run_edges))
                inserts += len(run_edges)
            else:
                removal_runs.append(self._remove_run(run_edges))
                removes += len(run_edges)
        return results, removal_runs, inserts, removes

    # ------------------------------------------------------------------
    # Run hooks (family-specific coalesced commits)
    # ------------------------------------------------------------------

    def _insert_run(self, edges) -> list[UpdateResult]:
        """Insert a run of edges; returns one result per op."""
        raise NotImplementedError

    def _remove_run(self, edges):
        """Remove a run of edges through the family's batch-native joint
        cascade; returns one aggregate run result (``removed`` /
        ``changed`` / ``visited`` attributes)."""
        raise NotImplementedError

"""Sharded order engine: per-component sub-engines, lock-free parallel
batches.

The PR-3 region scheduler proved that independent batch regions commute,
but its workers still serialized on an engine-wide lock because the
k-order blocks were *shared* state.  This module removes the shared
state itself, following the parallel core-maintenance literature (Wang
et al., *Parallel Algorithms for Core Maintenance in Dynamic Graphs*;
Jin et al., *A Parallel Approach based on Matching*): partition the
structural index, not just the work.

A :class:`ShardedOrderEngine` materializes one
:class:`~repro.core.maintainer.OrderedCoreMaintainer` **sub-engine per
connected component group** of the graph.  Each shard owns its own
subgraph, its own :class:`~repro.core.korder.KOrder` blocks (and
therefore its own :class:`~repro.structures.sequence.SequenceIndex`
backend and :class:`~repro.structures.sequence.SequenceStats`), and its
own ``mcd`` slice.  Core numbers of a disjoint union are the disjoint
union of per-component core numbers, so the sharded engine is exact by
construction — every agreement harness that covers the plain order
engine covers this one too.

Sharding protocol
-----------------
* **Intra-shard updates** delegate to the owning sub-engine unchanged.
* **Cross-shard inserts** (an edge whose endpoints live in different
  shards) trigger a *shard merge*: the smaller shard's graph, cores,
  k-order blocks, ``deg+`` and ``mcd`` are absorbed into the larger
  shard in O(smaller) without any recomputation — per level, the
  absorbed block is appended behind the survivor's block, which stays a
  valid k-order because disjoint components share no edges.  Counted by
  ``shard_merges`` / ``cross_region_ops``.
* **Removals never split eagerly** — a shard may come to hold several
  components, which stays exact (a sub-engine over a disconnected
  subgraph is still an order engine).  A *targeted re-shard*
  (:meth:`ShardedOrderEngine.reshard`) splits any shard whose subgraph
  has fallen apart back into per-component shards, again without
  recomputation (``shard_splits``); ``reshard="batch"`` runs it
  automatically after every batch that removed edges, checking only the
  shards that batch touched.

Because shards share **no** mutable state, :meth:`apply_batch` commits
per-shard sub-batches from a thread pool without the PR-3 engine-wide
region lock: workers run concurrently end to end, and only the
single-threaded pre-phase (merge resolution) and post-phase (top-graph
mirror, aggregation) touch shared structures.  Under the CPython GIL
the cascades still interleave, but nothing serializes *beyond* the GIL
— on free-threaded builds the same schedule is a true parallel win, and
either way the per-batch grouping is O(batch) instead of the region
partitioner's walk over the touched subgraph.

``BatchResult.counters`` reports, per batch: ``shards`` (live shard
count), ``shard_merges``, ``shard_splits``, ``cross_region_ops``,
``regions`` / ``region_max_size`` (sub-batch shape) and
``parallel_commits`` (sub-batches committed from the pool, i.e. without
any engine-wide lock).

Build one with ``make_engine("order-sharded", graph, parallel=4)`` or
``CoreService.open(edges, engine="order-sharded")``.
"""

from __future__ import annotations

import itertools
import time
import weakref
from concurrent.futures import ThreadPoolExecutor, wait
from typing import Hashable, Iterator, Mapping, Optional

from repro.core.korder import DEFAULT_SEQUENCE
from repro.core.maintainer import OrderedCoreMaintainer
from repro.core.simplified import SimplifiedCoreMaintainer
from repro.engine.base import CoreMaintainer, UpdateResult
from repro.engine.batch import Batch, BatchOp, BatchResult, merge_deltas
from repro.errors import (
    EdgeNotFoundError,
    InvariantViolationError,
    SelfLoopError,
    ServiceError,
)
from repro.graphs.undirected import DynamicGraph
from repro.structures.sequence import SequenceStats
from repro.testing.faults import inject

Vertex = Hashable
Edge = tuple[Vertex, Vertex]

#: Accepted values for the automatic re-shard policy.
RESHARD_POLICIES = ("off", "batch")

#: Bounded retry for transient worker-pool failures (thread spawn
#: denied, e.g. under resource limits): attempts beyond the first
#: submit, with exponential backoff starting at this many seconds.
POOL_SUBMIT_RETRIES = 2
POOL_RETRY_BACKOFF = 0.05

_COUNTER_KEYS = (
    "order_queries",
    "relabels",
    "rank_walk_steps",
    "mcd_recomputations",
    "candidate_visits",
)

#: Sub-engine families a shard may run (the ``engine=`` option): the
#: default ``mcd``-maintaining order engine or the Guo-Sekerinski
#: simplified engine.  Both expose the seams sharding needs —
#: ``from_index_state``, ``mcd_of`` and the ``_aux_degrees`` store that
#: merges/splits alongside ``core``/``deg+`` (``mcd`` for the default
#: engine, ``d_in`` for the simplified one).
SUB_ENGINES = {
    "order": OrderedCoreMaintainer,
    "order-simplified": SimplifiedCoreMaintainer,
}


def _component_lists(adj, ordered_vertices) -> list[list[Vertex]]:
    """Connected components of ``adj``, one O(n + m) pass, each returned
    as a list preserving the order of ``ordered_vertices``.

    Order preservation matters: a shard built from a single-component
    graph must present its vertices exactly as the plain engine would
    see them, so decompositions — and snapshots — agree byte-for-byte;
    the split path likewise needs each component in k-order.
    """
    ordered = list(ordered_vertices)
    comp_of: dict[Vertex, int] = {}
    n_comps = 0
    for root in ordered:
        if root in comp_of:
            continue
        comp_of[root] = n_comps
        stack = [root]
        while stack:
            x = stack.pop()
            for y in adj[x]:
                if y not in comp_of:
                    comp_of[y] = n_comps
                    stack.append(y)
        n_comps += 1
    lists: list[list[Vertex]] = [[] for _ in range(n_comps)]
    for vertex in ordered:
        lists[comp_of[vertex]].append(vertex)
    return lists


class _ShardedCores(Mapping):
    """Live read-only union view over every shard's core numbers."""

    __slots__ = ("_owner",)

    def __init__(self, owner: "ShardedOrderEngine") -> None:
        self._owner = owner

    def __getitem__(self, vertex: Vertex) -> int:
        owner = self._owner
        return owner._shards[owner._shard_of[vertex]].core[vertex]

    def get(self, vertex: Vertex, default=None):
        owner = self._owner
        sid = owner._shard_of.get(vertex)
        if sid is None:
            return default
        return owner._shards[sid].core[vertex]

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._owner._shard_of

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._owner._shard_of)

    def __len__(self) -> int:
        return len(self._owner._shard_of)


class _ShardedMcd(Mapping):
    """Live read-only union view over every shard's ``mcd`` slice."""

    __slots__ = ("_owner",)

    def __init__(self, owner: "ShardedOrderEngine") -> None:
        self._owner = owner

    def __getitem__(self, vertex: Vertex) -> int:
        owner = self._owner
        # mcd_of, not .mcd[...]: simplified shards derive the whole mcd
        # dict per property access, but answer one vertex in O(1).
        return owner._shards[owner._shard_of[vertex]].mcd_of(vertex)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._owner._shard_of)

    def __len__(self) -> int:
        return len(self._owner._shard_of)


class ShardedOrderEngine(CoreMaintainer):
    """Order-based maintenance over per-component sub-engines.

    Parameters
    ----------
    graph:
        The graph to index; adopted as the engine's *top-level* mirror.
        Each connected component is materialized as its own
        :class:`~repro.core.maintainer.OrderedCoreMaintainer` over a
        private subgraph copy.
    policy / seed / sequence / audit:
        Forwarded to every sub-engine (see
        :class:`~repro.core.maintainer.OrderedCoreMaintainer`); every
        shard receives the *same* ``seed`` value, so construction is
        deterministic and a single-component graph decomposes exactly
        like the plain engine would.
    parallel:
        Default worker count for :meth:`apply_batch`'s lock-free
        per-shard commits (``None``/``0`` = sequential).
    reshard:
        ``"off"`` (default) — shards only merge; call :meth:`reshard`
        explicitly to split.  ``"batch"`` — after every batch containing
        removals, the shards that batch touched are checked for
        disconnection and split per component.
    partition:
        Accepted for CLI/option symmetry with the plain order engine
        and ignored: the sharded engine always partitions by shard.
    engine:
        Sub-engine family each shard runs: ``"order"`` (default) or
        ``"order-simplified"`` (registered as
        ``make_engine("order-sharded-simplified")``).  Shards then
        commit their sub-batches through that family's run-native
        ``apply_batch``, and the engine reports its counters —
        ``mcd_recomputations`` for the default family,
        ``candidate_visits`` for the simplified one.

    >>> from repro.graphs.undirected import DynamicGraph
    >>> engine = ShardedOrderEngine(
    ...     DynamicGraph([(0, 1), (1, 2), (2, 0), (8, 9)])
    ... )
    >>> engine.shard_count
    2
    >>> result = engine.insert_edge(2, 8)   # cross-shard: shards merge
    >>> engine.shard_count, engine.shard_merges
    (1, 1)
    >>> engine.core_of(8)
    1
    """

    name = "order-sharded"

    def __init__(
        self,
        graph: DynamicGraph,
        policy: str = "small",
        seed: Optional[int] = 0,
        audit: bool = False,
        sequence: str = DEFAULT_SEQUENCE,
        parallel: Optional[int] = None,
        reshard: str = "off",
        partition: bool = True,
        engine: str = "order",
    ) -> None:
        if reshard not in RESHARD_POLICIES:
            raise ValueError(
                f"unknown reshard policy {reshard!r}; "
                f"choose from {', '.join(RESHARD_POLICIES)}"
            )
        if engine not in SUB_ENGINES:
            raise ValueError(
                f"unknown sub-engine {engine!r}; "
                f"choose from {', '.join(sorted(SUB_ENGINES))}"
            )
        super().__init__(graph)
        self._sub_cls = SUB_ENGINES[engine]
        if engine != "order":
            self.name = "order-sharded-" + engine.removeprefix("order-")
        self._policy = policy
        self._seed = seed
        self._audit = audit
        self._sequence = sequence
        self._parallel = parallel if parallel else None
        self._reshard_policy = reshard
        self._shards: dict[int, CoreMaintainer] = {}
        self._shard_of: dict[Vertex, int] = {}
        self._next_sid = itertools.count(1)
        #: Cumulative protocol counters.
        self.shard_merges = 0
        self.shard_splits = 0
        self.cross_region_ops = 0
        self.pool_retries = 0
        self._closed = False
        #: Counters inherited from absorbed/split-away sub-engines, so
        #: per-batch deltas survive shard turnover.
        self._retired = dict.fromkeys(_COUNTER_KEYS, 0)
        #: Persistent worker pool, created on first parallel batch and
        #: torn down when the engine is collected (or via close()).
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_workers = 0
        self._core_view = _ShardedCores(self)
        self._mcd_view = _ShardedMcd(self)
        self._build_initial_shards()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build_initial_shards(self) -> None:
        graph = self._graph
        for ordered in _component_lists(graph.adj, graph.vertices()):
            sub = DynamicGraph(vertices=ordered)
            for u in ordered:
                for w in graph.adj[u]:
                    if not sub.has_edge(u, w):
                        sub.add_edge(u, w)
            self._new_shard(sub)

    def _new_shard(self, subgraph: DynamicGraph) -> int:
        sid = next(self._next_sid)
        engine = self._sub_cls(
            subgraph,
            policy=self._policy,
            seed=self._seed,
            audit=False,  # audited shard-wide via self.check()
            sequence=self._sequence,
        )
        self._shards[sid] = engine
        for vertex in subgraph.vertices():
            self._shard_of[vertex] = sid
        return sid

    def _adopt_shard(self, engine) -> int:
        sid = next(self._next_sid)
        self._shards[sid] = engine
        for vertex in engine.graph.vertices():
            self._shard_of[vertex] = sid
        return sid

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def core(self) -> Mapping[Vertex, int]:
        return self._core_view

    @property
    def mcd(self) -> Mapping[Vertex, int]:
        """Maintained max-core degrees, unioned across shards."""
        return self._mcd_view

    @property
    def sequence(self) -> str:
        """The k-order block backend every shard uses."""
        return self._sequence

    @property
    def shard_count(self) -> int:
        """Number of live shards (component groups)."""
        return len(self._shards)

    @property
    def shards(self) -> tuple[CoreMaintainer, ...]:
        """The live sub-engines (read-only; for tests and diagnostics)."""
        return tuple(self._shards.values())

    def shard_id_of(self, vertex: Vertex) -> int:
        """The shard currently owning ``vertex`` (``KeyError`` if none)."""
        return self._shard_of[vertex]

    @property
    def mcd_recomputations(self) -> int:
        """Per-vertex ``mcd`` recomputations summed across all shards,
        including shards since merged or split away (0 under simplified
        sub-engines, which have no ``mcd`` concept)."""
        return self._retired["mcd_recomputations"] + sum(
            getattr(shard, "mcd_recomputations", 0)
            for shard in self._shards.values()
        )

    @property
    def candidate_visits(self) -> int:
        """Candidate-scan visits summed across all shards (the
        simplified family's chargeable unit; 0 under default
        sub-engines), including shards since merged or split away."""
        return self._retired["candidate_visits"] + sum(
            getattr(shard, "candidate_visits", 0)
            for shard in self._shards.values()
        )

    @property
    def sequence_stats(self) -> SequenceStats:
        """Aggregated sequence-backend counters across all shards
        (a fresh snapshot object, not a live handle)."""
        total = SequenceStats(
            order_queries=self._retired["order_queries"],
            relabels=self._retired["relabels"],
            rank_walk_steps=self._retired["rank_walk_steps"],
        )
        for shard in self._shards.values():
            stats = shard.korder.stats
            total.order_queries += stats.order_queries
            total.relabels += stats.relabels
            total.rank_walk_steps += stats.rank_walk_steps
        return total

    def order(self) -> list[Vertex]:
        """A valid k-order of the whole graph: per level, shard blocks
        concatenated in shard-id order."""
        levels: dict[int, list[Vertex]] = {}
        for sid in sorted(self._shards):
            korder = self._shards[sid].korder
            for k in sorted(korder.block_sizes()):
                levels.setdefault(k, []).extend(korder.iter_block(k))
        out: list[Vertex] = []
        for k in sorted(levels):
            out.extend(levels[k])
        return out

    # ------------------------------------------------------------------
    # Per-edge updates
    # ------------------------------------------------------------------

    def add_vertex(self, vertex: Vertex) -> bool:
        self._require_open()
        if not self._graph.add_vertex(vertex):
            return False
        self._new_shard(DynamicGraph(vertices=[vertex]))
        return True

    def insert_edge(self, u: Vertex, v: Vertex) -> UpdateResult:
        """Insert ``(u, v)``; merges shards first if the edge crosses."""
        self._require_open()
        self._resolve_insert(u, v)
        shard = self._shards[self._shard_of[u]]
        result = shard.insert_edge(u, v)
        self._graph.add_edge(u, v)
        if self._audit:
            self.check()
        return result

    def remove_edge(self, u: Vertex, v: Vertex) -> UpdateResult:
        """Remove ``(u, v)`` from its owning shard."""
        self._require_open()
        sid = self._owning_shard(u, v)
        result = self._shards[sid].remove_edge(u, v)
        self._graph.remove_edge(u, v)
        if self._reshard_policy == "batch":
            self._split_shard(sid)
        if self._audit:
            self.check()
        return result

    def _owning_shard(self, u: Vertex, v: Vertex) -> int:
        su = self._shard_of.get(u)
        sv = self._shard_of.get(v)
        if su is None or su != sv:
            raise EdgeNotFoundError(u, v)
        return su

    def _resolve_insert(self, u: Vertex, v: Vertex) -> None:
        """Make ``(u, v)`` intra-shard: merge or create shards as needed.

        New endpoints are registered eagerly (in their shard *and* the
        top-level mirror), so shard membership always follows graph
        membership — a later merge can never strand a pending
        assignment.  Resolution is semantically neutral: merges only
        coarsen the sharding and an isolated vertex has core 0, so
        resolving up front leaves no inconsistent state even if the
        batch later fails.
        """
        if u == v:
            raise SelfLoopError(u)
        su = self._shard_of.get(u)
        sv = self._shard_of.get(v)
        if su is None and sv is None:
            self._new_shard(DynamicGraph(vertices=[u, v]))
            self._graph.add_vertex(u)
            self._graph.add_vertex(v)
        elif su is None:
            self._shards[sv].add_vertex(u)
            self._shard_of[u] = sv
            self._graph.add_vertex(u)
        elif sv is None:
            self._shards[su].add_vertex(v)
            self._shard_of[v] = su
            self._graph.add_vertex(v)
        elif su != sv:
            self.cross_region_ops += 1
            self._merge_shards(su, sv)

    def _merge_shards(self, sa: int, sb: int) -> int:
        """Absorb the smaller of two shards into the larger (O(smaller));
        returns the surviving shard id."""
        if len(self._shards[sa].graph) < len(self._shards[sb].graph):
            sa, sb = sb, sa
        big = self._shards[sa]
        small = self._shards.pop(sb)
        big_graph = big.graph
        for vertex in small.graph.vertices():
            big_graph.add_vertex(vertex)
            self._shard_of[vertex] = sa
        for u, v in small.graph.edges():
            big_graph.add_edge(u, v)
        big._core.update(small._core)
        # The family's auxiliary degrees (mcd or d_in) move untouched:
        # disjoint components share no edges, and absorbed blocks land
        # behind the survivor's, so no same-block predecessor changes.
        big._aux_degrees.update(small._aux_degrees)
        big_korder = big.korder
        small_korder = small.korder
        # Per level, append the absorbed block behind the survivor's:
        # disjoint components share no edges, so deg+ is unchanged and
        # Lemma 5.1 holds for the concatenation.
        for k in sorted(small_korder.block_sizes()):
            for vertex in small_korder.iter_block(k):
                big_korder.append(k, vertex)
        big_korder.deg_plus.update(small_korder.deg_plus)
        self._retire_counters(small)
        self.shard_merges += 1
        return sa

    def _retire_counters(self, engine) -> None:
        stats = engine.korder.stats
        retired = self._retired
        retired["order_queries"] += stats.order_queries
        retired["relabels"] += stats.relabels
        retired["rank_walk_steps"] += stats.rank_walk_steps
        retired["mcd_recomputations"] += getattr(
            engine, "mcd_recomputations", 0
        )
        retired["candidate_visits"] += getattr(engine, "candidate_visits", 0)

    def _forget_vertex(self, vertex: Vertex) -> None:
        sid = self._shard_of.pop(vertex, None)
        if sid is None:
            return
        shard = self._shards[sid]
        shard.graph.remove_vertex(vertex)
        shard._forget_vertex(vertex)
        if not shard.graph.n:
            self._retire_counters(shard)
            del self._shards[sid]

    # ------------------------------------------------------------------
    # Re-sharding (targeted splits)
    # ------------------------------------------------------------------

    def reshard(self) -> int:
        """Split every disconnected shard into per-component shards.

        Returns the number of *new* shards created (0 when every shard
        is already connected).  O(sum of split shard sizes); connected
        shards cost one BFS each.  Splitting moves index state — order,
        ``deg+``, ``mcd`` — without recomputation.
        """
        created = 0
        for sid in list(self._shards):
            created += self._split_shard(sid)
        return created

    def _split_shard(self, sid: int) -> int:
        """Split shard ``sid`` per component if disconnected; returns the
        number of new shards created."""
        shard = self._shards.get(sid)
        if shard is None or not shard.graph.n:
            return 0
        graph = shard.graph
        # Component lists in the shard's k-order: the global order
        # restricted to a component is a valid k-order of it, so each
        # new sub-engine is rebuilt from existing (valid) index state —
        # no recomputation.
        components = _component_lists(graph.adj, shard.order())
        if len(components) <= 1:
            return 0
        core, aux = shard._core, shard._aux_degrees
        deg_plus = shard.korder.deg_plus
        self._retire_counters(shard)
        del self._shards[sid]
        for comp_order in components:
            sub = DynamicGraph(vertices=comp_order)
            for u in comp_order:
                for w in graph.adj[u]:
                    if not sub.has_edge(u, w):
                        sub.add_edge(u, w)
            engine = self._sub_cls.from_index_state(
                sub,
                comp_order,
                {v: core[v] for v in comp_order},
                {v: deg_plus[v] for v in comp_order},
                {v: aux[v] for v in comp_order},
                sequence=self._sequence,
                seed=self._seed,
            )
            self._adopt_shard(engine)
        self.shard_splits += len(components) - 1
        return len(components) - 1

    # ------------------------------------------------------------------
    # Batch pipeline (the lock-free schedule)
    # ------------------------------------------------------------------

    def apply_batch(
        self, batch: Batch, parallel: Optional[int] = None
    ) -> BatchResult:
        """Apply a mixed batch shard by shard, without an engine lock.

        Three phases:

        1. **Resolve** (single-threaded): every op is made intra-shard —
           cross-shard inserts merge their shards
           (``shard_merges``/``cross_region_ops``), inserts touching new
           vertices assign or create shards — then ops are grouped into
           per-shard sub-batches, preserving per-edge op order.  O(batch)
           plus merge costs; no graph walk.
        2. **Commit**: each sub-batch goes through its own sub-engine's
           ``apply_batch`` (run coalescing included).  With ``parallel``
           workers (per-call override of the engine default) sub-batches
           commit from a thread pool with **no shared-state lock** —
           shards are disjoint by construction.
        3. **Aggregate** (single-threaded): the top-level graph mirror is
           trued up from the shard graphs, results and counters are
           merged, and (under ``reshard="batch"``) shards that removed
           edges are split per component if disconnected.

        Same contracts as the plain order engine: ``results`` keeps
        per-op detail only for removal-free batches (restored to batch op
        order); ``changed``/``visited`` are always exact.
        """
        started = time.perf_counter()
        self._require_open()
        baseline = self._batch_counters()
        if parallel is None:
            parallel = self._parallel

        # Phase 1a: resolve every insert first (merges / shard creation),
        # so a late cross-shard insert cannot merge away a shard that an
        # earlier op was already grouped under.
        for op in batch:
            if op.kind == "insert":
                self._resolve_insert(*op.edge)
        # Phase 1b: group ops under the now-stable shard assignment.  A
        # removal whose edge cannot exist (endpoints unknown or in
        # different shards) aborts here, before anything commits — the
        # service pre-validates, so only raw callers ever see this.
        regions: dict[int, list[BatchOp]] = {}
        removal_sids: set[int] = set()
        for op in batch:
            u, v = op.edge
            if op.kind == "insert":
                sid = self._shard_of[u]
            else:
                sid = self._shard_of.get(u)
                if sid is None or sid != self._shard_of.get(v):
                    raise EdgeNotFoundError(u, v)
                removal_sids.add(sid)
            regions.setdefault(sid, []).append(op)

        sub_batches = [(sid, Batch(ops)) for sid, ops in regions.items()]

        # Phase 2: commit sub-batches — in a pool when asked, lock-free.
        outcomes: list[Optional[BatchResult]] = [None] * len(sub_batches)
        parallel_commits = 0
        try:
            if parallel and len(sub_batches) > 1:
                parallel_commits = len(sub_batches)
                futures = []
                inline = []
                for index, (sid, sub) in enumerate(sub_batches):
                    future = self._submit_commit(parallel, sid, sub)
                    if future is None:
                        # Pool stayed broken after bounded retries: the
                        # sub-batch still commits, inline.  Shards are
                        # disjoint, so mixing pooled and inline commits
                        # of one batch is safe.
                        inline.append((index, sid, sub))
                    else:
                        futures.append((index, future))
                # Wait for EVERY worker — success or failure — before
                # touching shared state (or raising): the finally-block
                # mirror sync must never observe a shard mid-commit.
                wait([future for _, future in futures])
                for index, sid, sub in inline:
                    outcomes[index] = self._commit_shard(sid, sub)
                for index, future in futures:
                    outcomes[index] = future.result()  # re-raises errors
            else:
                for index, (sid, sub) in enumerate(sub_batches):
                    outcomes[index] = self._commit_shard(sid, sub)
        finally:
            # Phase 3a: true up the top-level mirror from the shard
            # graphs — runs even on a mid-batch engine error, so the
            # mirror tracks exactly what landed.
            for sid, sub in sub_batches:
                self._sync_region(sid, sub)

        inserts = removes = visited = 0
        results: Optional[list[UpdateResult]] = []
        changed: dict[Vertex, int] = {}
        for outcome in outcomes:
            inserts += outcome.inserts
            removes += outcome.removes
            visited += outcome.visited
            if outcome.results is None:
                results = None
            if results is not None:
                results.extend(outcome.results)
            merge_deltas(changed, outcome.changed.items())
        if results is not None and len(sub_batches) > 1:
            positions = {op.edge: i for i, op in enumerate(batch)}
            results.sort(key=lambda r: positions[r.edge])

        if self._reshard_policy == "batch":
            for sid in removal_sids:
                self._split_shard(sid)

        counters = self._counter_deltas(baseline)
        counters["shards"] = len(self._shards)
        counters["regions"] = len(sub_batches)
        counters["region_max_size"] = max(
            (len(sub) for _, sub in sub_batches), default=0
        )
        counters["parallel_commits"] = parallel_commits
        if self._audit:
            self.check()
        return BatchResult(
            engine=self.name,
            inserts=inserts,
            removes=removes,
            changed=changed,
            visited=visited,
            seconds=time.perf_counter() - started,
            results=results,
            counters=counters,
        )

    def _commit_shard(self, sid: int, sub: Batch) -> BatchResult:
        """Commit one per-shard sub-batch (pool worker or inline)."""
        inject("shard.worker_commit")
        return self._shards[sid].apply_batch(sub)

    def _submit_commit(self, workers: int, sid: int, sub: Batch):
        """Submit one sub-batch commit to the pool, retrying transient
        pool failures (thread spawn denied raises ``RuntimeError``) with
        exponential backoff and a rebuilt pool.

        Returns the future, or ``None`` after the bounded retries are
        exhausted — the caller then commits the sub-batch inline, so a
        starved pool degrades to sequential commits instead of failing
        the batch.  Retries are counted in ``pool_retries``.
        """
        for attempt in range(POOL_SUBMIT_RETRIES + 1):
            try:
                return self._get_pool(workers).submit(
                    self._commit_shard, sid, sub
                )
            except RuntimeError:
                self.pool_retries += 1
                self._teardown_pool()
                if attempt < POOL_SUBMIT_RETRIES:
                    time.sleep(POOL_RETRY_BACKOFF * (2 ** attempt))
        return None

    def _get_pool(self, workers: int) -> ThreadPoolExecutor:
        """The engine's persistent worker pool, (re)sized on demand.

        Created once and reused across batches — per-batch pool setup
        would otherwise dominate small commits.  A finalizer tears it
        down when the engine is collected or at interpreter shutdown
        (``weakref.finalize`` runs at exit even without ``__del__``);
        :meth:`close` does so eagerly.
        """
        if self._pool is None or self._pool_workers != workers:
            self._teardown_pool()
            self._pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-shard"
            )
            self._pool_workers = workers
            weakref.finalize(
                self, ThreadPoolExecutor.shutdown, self._pool, wait=False
            )
        return self._pool

    def _teardown_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None
            self._pool_workers = 0

    def close(self) -> None:
        """Close the engine: shut down the worker pool, refuse commits.

        Idempotent — closing twice is a no-op, never a deadlock.  After
        close, reads (``core``, ``order``, ``check``) keep answering on
        the final state, but any further update raises a clear
        :class:`~repro.errors.ServiceError` instead of dying on a dead
        pool.  Interpreter-shutdown paths that never call ``close`` are
        covered by the pool's ``weakref.finalize``.
        """
        if self._closed:
            return
        self._closed = True
        self._teardown_pool()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has retired this engine."""
        return self._closed

    def _require_open(self) -> None:
        if self._closed:
            raise ServiceError(
                f"engine {self.name!r} is closed; reads still answer, "
                "but updates need a live engine"
            )

    def _sync_region(self, sid: int, sub: Batch) -> None:
        """Mirror one sub-batch's final edge states onto the top graph.

        Driven by the *shard* graph's post-commit truth, so a sub-batch
        that failed mid-run (engine error) still leaves the mirror
        consistent with what actually landed.
        """
        shard = self._shards[sid]
        top = self._graph
        shard_graph = shard.graph
        for op in sub:
            u, v = op.edge
            present = shard_graph.has_edge(u, v)
            if present and not top.has_edge(u, v):
                top.add_edge(u, v)
            elif not present and top.has_edge(u, v):
                top.remove_edge(u, v)
            for x in (u, v):
                if shard_graph.has_vertex(x):
                    top.add_vertex(x)  # no-op when already mirrored

    def _batch_counters(self) -> dict[str, int]:
        counters = dict(self._retired)
        for shard in self._shards.values():
            stats = shard.korder.stats
            counters["order_queries"] += stats.order_queries
            counters["relabels"] += stats.relabels
            counters["rank_walk_steps"] += stats.rank_walk_steps
            counters["mcd_recomputations"] += getattr(
                shard, "mcd_recomputations", 0
            )
            counters["candidate_visits"] += getattr(
                shard, "candidate_visits", 0
            )
        counters["shard_merges"] = self.shard_merges
        counters["shard_splits"] = self.shard_splits
        counters["cross_region_ops"] = self.cross_region_ops
        counters["pool_retries"] = self.pool_retries
        return counters

    # ------------------------------------------------------------------
    # Audit
    # ------------------------------------------------------------------

    def check(self) -> None:
        """Audit every shard plus the sharding invariants themselves.

        Raises :class:`~repro.errors.InvariantViolationError` when a
        shard's index is broken, when the shard assignment disagrees
        with the shard graphs, or when the top-level mirror diverges
        from the union of shard graphs.
        """
        seen: set[Vertex] = set()
        total_edges = 0
        for sid, shard in self._shards.items():
            shard.check()
            total_edges += shard.graph.m
            for vertex in shard.graph.vertices():
                if self._shard_of.get(vertex) != sid:
                    raise InvariantViolationError(
                        f"{vertex!r} in shard {sid} but assigned to "
                        f"{self._shard_of.get(vertex)!r}"
                    )
                if vertex in seen:
                    raise InvariantViolationError(
                        f"{vertex!r} appears in two shards"
                    )
                seen.add(vertex)
                if shard.graph.adj[vertex] != self._graph.adj.get(vertex):
                    raise InvariantViolationError(
                        f"mirror adjacency of {vertex!r} diverged from "
                        f"its shard"
                    )
        if seen != set(self._graph.vertices()):
            raise InvariantViolationError(
                "shard vertex union does not match the top-level graph"
            )
        if total_edges != self._graph.m:
            raise InvariantViolationError(
                f"shards hold {total_edges} edges, mirror has "
                f"{self._graph.m}"
            )

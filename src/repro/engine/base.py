"""Shared interface for every core-maintenance engine.

Three engines implement it:

* :class:`repro.core.maintainer.OrderedCoreMaintainer` — the paper's
  order-based algorithm;
* :class:`repro.traversal.maintainer.TraversalCoreMaintainer` — the
  state-of-the-art baseline (Sariyüce et al.), parameterized by hop count;
* :class:`repro.naive.maintainer.NaiveCoreMaintainer` — recompute from
  scratch (test oracle / lower bound).

All engines take ownership of the graph passed to them: updates must go
through the engine so its index stays consistent with the graph.

Besides the per-edge updates the paper describes, every engine accepts a
:class:`~repro.engine.batch.Batch` of mixed insertions/removals through
:meth:`CoreMaintainer.apply_batch`.  The base class provides a per-edge
fallback; engines override it with genuinely faster batched paths (the
order engine coalesces ``mcd`` repair per same-kind run — batch-native on
both the insertion and removal sides — and schedules independent batch
regions; the naive engine recomputes once per batch).

Engines are created by name through the registry in
:mod:`repro.engine.registry` (:func:`~repro.engine.registry.make_engine`).
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping, Optional

from repro.engine.batch import Batch, BatchResult, net_changes
from repro.graphs.undirected import DynamicGraph
from repro.testing.faults import inject

Vertex = Hashable
Edge = tuple[Vertex, Vertex]


@dataclass(frozen=True)
class UpdateResult:
    """Outcome of one edge update.

    Attributes
    ----------
    kind:
        ``"insert"`` or ``"remove"``.
    edge:
        The edge as passed by the caller (batch paths normalize it to
        the batch's canonical orientation).
    k:
        ``K = min(core(u), core(v))`` at update time — the block the update
        happened in (Fig. 10b plots the distribution of this value).
    changed:
        ``V*``: the vertices whose core number changed (by exactly 1, per
        Theorem 3.1).
    visited:
        Size of the search space: ``|V+|`` for the order-based engine,
        ``|V'|`` for the traversal engine (what Figs. 1-2 measure).
    evicted:
        Insertions only: number of vertices that became candidates but
        were later disproven (Algorithm 3's cascade for the order engine,
        eviction propagation for the traversal engine).
    """

    kind: str
    edge: Edge
    k: int
    changed: tuple = field(default=())
    visited: int = 0
    evicted: int = 0

    @property
    def delta(self) -> int:
        """Core-number delta applied to every vertex in ``changed``."""
        return 1 if self.kind == "insert" else -1


class CoreMaintainer(ABC):
    """Abstract core-maintenance engine."""

    #: Human-readable engine name, overridden by subclasses.
    name = "abstract"

    def __init__(self, graph: DynamicGraph) -> None:
        self._graph = graph

    # ------------------------------------------------------------------
    # Read-only accessors
    # ------------------------------------------------------------------

    @property
    def graph(self) -> DynamicGraph:
        """The underlying graph (mutate only through the engine)."""
        return self._graph

    @property
    @abstractmethod
    def core(self) -> Mapping[Vertex, int]:
        """Current core numbers; treat as read-only."""

    def core_of(self, vertex: Vertex) -> int:
        """Core number of one vertex."""
        return self.core[vertex]

    def core_numbers(self) -> dict[Vertex, int]:
        """A snapshot copy of all core numbers."""
        return dict(self.core)

    def k_core(self, k: int) -> set[Vertex]:
        """Vertex set of the ``k``-core (``core(v) >= k``)."""
        return {v for v, c in self.core.items() if c >= k}

    def k_shell(self, k: int) -> set[Vertex]:
        """Vertices with core number exactly ``k``."""
        return {v for v, c in self.core.items() if c == k}

    def degeneracy(self) -> int:
        """The largest ``k`` with a non-empty ``k``-core (max core number)."""
        return max(self.core.values(), default=0)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    @abstractmethod
    def insert_edge(self, u: Vertex, v: Vertex) -> UpdateResult:
        """Insert edge ``(u, v)`` and repair all core numbers."""

    @abstractmethod
    def remove_edge(self, u: Vertex, v: Vertex) -> UpdateResult:
        """Remove edge ``(u, v)`` and repair all core numbers."""

    @abstractmethod
    def add_vertex(self, vertex: Vertex) -> bool:
        """Register an isolated vertex; returns ``False`` if present."""

    def remove_vertex(self, vertex: Vertex) -> list[UpdateResult]:
        """Remove a vertex as a sequence of edge removals (Section I).

        The paper treats vertex updates as edge-update sequences; engines
        inherit that behaviour.  Returns one result per removed edge.
        """
        results = [
            self.remove_edge(vertex, w)
            for w in list(self._graph.adj[vertex])
        ]
        self._graph.remove_vertex(vertex)
        self._forget_vertex(vertex)
        return results

    def insert_edges(self, edges: Iterable[Edge]) -> list[UpdateResult]:
        """Insert several edges one by one."""
        return [self.insert_edge(u, v) for u, v in edges]

    def remove_edges(self, edges: Iterable[Edge]) -> list[UpdateResult]:
        """Remove several edges one by one."""
        return [self.remove_edge(u, v) for u, v in edges]

    # ------------------------------------------------------------------
    # Batch pipeline
    # ------------------------------------------------------------------

    def apply_batch(self, batch: Batch) -> BatchResult:
        """Apply a mixed :class:`~repro.engine.batch.Batch` of updates.

        The base implementation replays the batch one edge at a time in
        op order and aggregates the results; engines override it with
        faster schedules that leave the final graph and core numbers
        identical (per-op attribution may then follow the engine's
        schedule rather than the batch's op order).
        """
        started = time.perf_counter()
        baseline = self._batch_counters()
        results = []
        inserts = removes = 0
        for op in batch:
            inject("engine.mid_batch")
            if op.kind == "insert":
                results.append(self.insert_edge(*op.edge))
                inserts += 1
            else:
                results.append(self.remove_edge(*op.edge))
                removes += 1
        return self._finish_batch(
            results, inserts, removes, started, counter_baseline=baseline
        )

    def _batch_counters(self) -> dict[str, int]:
        """Cumulative instrumentation counters; engines override.

        The order engine reports its sequence-backend stats
        (``order_queries``, ``relabels``, ``rank_walk_steps``) plus
        ``mcd_recomputations``; the default is no counters.
        """
        return {}

    def _counter_deltas(self, baseline: Optional[dict]) -> dict:
        """Current :meth:`_batch_counters` as per-batch deltas.

        ``baseline`` is a counter snapshot taken when the batch started;
        engines whose schedules build :class:`BatchResult` directly (the
        order engine's region scheduler) share this arithmetic with
        :meth:`_finish_batch`.

        Counters the engine never touched are omitted, not zero-filled:
        :meth:`_batch_counters` values are cumulative and monotonic, so
        a cumulative 0 means the counter's machinery never ran at all
        (no ``relabels`` under the treap backend, no
        ``mcd_recomputations`` on an engine with no ``mcd`` concept) —
        reporting ``0`` would misread as "ran and did nothing".  A
        counter that has ever moved stays reported, even when this
        batch's delta is 0.
        """
        counters = self._batch_counters()
        if baseline:
            return {
                key: value - baseline.get(key, 0)
                for key, value in counters.items()
                if value
            }
        return {key: value for key, value in counters.items() if value}

    def _finish_batch(
        self,
        results: list,
        inserts: int,
        removes: int,
        started: float,
        counter_baseline: Optional[dict] = None,
    ) -> BatchResult:
        """Aggregate per-op results into a :class:`BatchResult`.

        Shared by every schedule that keeps per-op attribution, so the
        aggregate definitions (net changes, visited, timing) live in one
        place.  ``counter_baseline`` (a :meth:`_batch_counters` snapshot
        taken when the batch started) turns the cumulative counters into
        per-batch deltas.
        """
        counters = self._counter_deltas(counter_baseline)
        return BatchResult(
            engine=self.name,
            inserts=inserts,
            removes=removes,
            changed=net_changes(results),
            visited=sum(r.visited for r in results),
            seconds=time.perf_counter() - started,
            results=results,
            counters=counters,
        )

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------

    @abstractmethod
    def _forget_vertex(self, vertex: Vertex) -> None:
        """Drop per-vertex index state after the vertex left the graph."""

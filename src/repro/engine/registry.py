"""Engine registry and factory: one way to build every maintainer.

Every consumer (streaming monitor, benchmarks, CLI, applications) creates
engines through :func:`make_engine` instead of importing concrete classes,
so new engines (sharded, parallel, remote …) plug in with one
:func:`register_engine` call.

Names
-----
``order``
    The paper's order-based engine (alias ``order-small``; also
    ``order-large`` / ``order-random`` for the Section VI generation
    heuristics).  All order engines accept ``sequence="om" | "treap"``
    to pick the k-order block backend (O(1) tagged order-maintenance
    lists vs O(log n) order-statistic treaps); ``order-om`` and
    ``order-treap`` are aliases that pin the backend by name, for
    CLI ``--engine`` selection.  They also accept the batch-scheduler
    options ``partition=True`` (split every batch into independent
    regions before applying) and ``parallel=<workers>`` (opt-in
    region-parallel application; implies partitioning).
``order-simplified``
    The Guo–Sekerinski simplified order-based engine
    (:class:`~repro.core.simplified.SimplifiedCoreMaintainer`): same
    k-order index, but two order-local degrees replace the maintained
    ``mcd`` so no repair pass runs after updates.  This is
    :data:`DEFAULT_ENGINE` — what consumers get when they do not pick
    an engine — per the PR-10 ablation.  Carries the same
    policy/backend alias block as ``order``
    (``order-simplified-{small,large,random,om,treap}``) and the same
    ``sequence`` / ``policy`` options, *and* — since it gained
    batch-native runs (one joint removal cascade per affected level on
    the ``d_in + d_out`` bound) — the same ``partition`` / ``parallel``
    batch-scheduler options.
``order-sharded``
    The sharded order engine
    (:class:`~repro.engine.sharded.ShardedOrderEngine`): one order
    sub-engine per connected component group, so ``parallel=<workers>``
    commits independent batch regions from a thread pool with **no**
    engine-wide lock.  Accepts the order family's ``sequence`` /
    ``policy`` options plus ``reshard="off" | "batch"`` (targeted
    re-shard of disconnected shards after removal batches) and
    ``engine="order" | "order-simplified"`` to pick the sub-engine
    family; ``order-sharded-simplified`` pins the simplified family by
    name.
``trav-<h>``
    The traversal baseline with hop count ``h >= 2`` (``trav`` alone means
    ``trav-2``); any ``h`` is accepted, not just the pre-listed ones.
``naive``
    Full recomputation after every update (oracle / lower bound).

Factories ignore a ``seed`` keyword when the engine has no randomness, so
callers can pass a common option set to any engine name.
"""

from __future__ import annotations

import inspect
import re
from typing import Callable, Dict, FrozenSet, Optional

from repro.engine.base import CoreMaintainer
from repro.errors import EngineOptionError
from repro.graphs.undirected import DynamicGraph

EngineFactory = Callable[..., CoreMaintainer]

#: The engine consumers get when they do not pick one (CoreService,
#: the streaming monitor, the server, scenario replay, the CLI).  Set to
#: the simplified order engine by the PR-10 ablation: with batch-native
#: runs on both sides it ties the mixed-batched regime (1.03x median,
#: within noise) and wins every per-edge regime (insert 1.1-1.4x,
#: remove 1.6-2.1x) while maintaining strictly less state (no ``mcd``,
#: no repair pass).  See ROADMAP.md and BENCH_simplified_ablation.json.
DEFAULT_ENGINE = "order-simplified"

_REGISTRY: Dict[str, EngineFactory] = {}
_TRAV_PATTERN = re.compile(r"^trav-(\d+)$")


def _factory_options(factory: EngineFactory) -> Optional[FrozenSet[str]]:
    """Option names ``factory`` accepts, or ``None`` for "anything".

    The first parameter is the graph and never an option.  A factory
    with a ``**kwargs`` catch-all opts out of validation (it is expected
    to do its own), as does anything :func:`inspect.signature` cannot
    introspect.
    """
    try:
        params = list(inspect.signature(factory).parameters.values())
    except (TypeError, ValueError):  # pragma: no cover - builtins etc.
        return None
    accepted = set()
    for param in params[1:]:
        if param.kind is param.VAR_KEYWORD:
            return None
        if param.kind in (param.POSITIONAL_OR_KEYWORD, param.KEYWORD_ONLY):
            accepted.add(param.name)
    return frozenset(accepted)


def _check_options(
    name: str, factory: EngineFactory, opts: dict, *, reserved: tuple = ()
) -> None:
    """Reject options ``factory`` would not understand.

    Raises :class:`~repro.errors.EngineOptionError` naming the engine
    and every stray keyword — factories must never swallow a typo
    (``sequnce="om"``) silently.  ``reserved`` names parameters the
    registry itself supplies (e.g. the traversal family's ``h``, which
    comes from the engine *name*), so callers cannot collide with them.
    """
    accepted = _factory_options(factory)
    if accepted is None:
        return
    accepted = accepted - set(reserved)
    stray = sorted(set(opts) - accepted)
    if stray:
        raise EngineOptionError(name, tuple(stray), tuple(sorted(accepted)))


def engine_options(name: str) -> Optional[tuple[str, ...]]:
    """Option names :func:`make_engine` accepts for ``name``.

    ``None`` means the factory validates its own options (it takes
    ``**kwargs``).  Raises ``ValueError`` for unknown engine names.

    >>> engine_options("naive")
    ('audit', 'seed')
    """
    factory = _REGISTRY.get(name)
    reserved: tuple = ()
    if factory is None:
        if not is_engine_name(name):
            raise ValueError(f"unknown engine {name!r}")
        factory, reserved = _make_traversal, ("h",)
    accepted = _factory_options(factory)
    if accepted is None:
        return None
    return tuple(sorted(accepted - set(reserved)))


def register_engine(name: str, factory: EngineFactory, *, overwrite: bool = False) -> None:
    """Register ``factory`` under ``name`` for :func:`make_engine`.

    ``factory(graph, **opts)`` must return a :class:`CoreMaintainer`.
    Re-registering an existing name requires ``overwrite=True``.
    """
    if not overwrite and name in _REGISTRY:
        raise ValueError(f"engine {name!r} is already registered")
    _REGISTRY[name] = factory


def available_engines() -> tuple[str, ...]:
    """Registered engine names (``trav-<h>`` accepts any ``h >= 2``)."""
    return tuple(sorted(_REGISTRY))


def is_engine_name(name: str) -> bool:
    """True when :func:`make_engine` would resolve ``name``.

    The single source of truth for name validation — CLIs and configs
    should call this instead of re-implementing the ``trav-<h>`` pattern.
    """
    if name in _REGISTRY:
        return True
    match = _TRAV_PATTERN.match(name)
    return bool(match) and int(match.group(1)) >= 2


def make_engine(name: str, graph: DynamicGraph, **opts) -> CoreMaintainer:
    """Instantiate a maintenance engine by registry name.

    >>> from repro.graphs.undirected import DynamicGraph
    >>> make_engine("order", DynamicGraph([(0, 1)])).name
    'order'
    >>> make_engine("order-sharded", DynamicGraph([(0, 1)]), parallel=2).name
    'order-sharded'

    Unknown names raise ``ValueError`` listing what is available;
    unknown *options* raise :class:`~repro.errors.EngineOptionError`
    naming the engine, the stray keyword and what the engine accepts —
    a typoed option must fail loudly, never be swallowed by a factory.
    """
    factory = _REGISTRY.get(name)
    if factory is None:
        match = _TRAV_PATTERN.match(name)
        if match:
            _check_options(name, _make_traversal, opts, reserved=("h",))
            return _make_traversal(graph, h=int(match.group(1)), **opts)
        raise ValueError(
            f"unknown engine {name!r}; registered engines: "
            f"{', '.join(available_engines())} (plus any 'trav-<h>')"
        )
    _check_options(name, factory, opts)
    return factory(graph, **opts)


# ----------------------------------------------------------------------
# Built-in engines.  Imports happen inside the factories so the registry
# can be imported from anywhere (including the engine base module's own
# consumers) without circular-import ceremony.
# ----------------------------------------------------------------------

def _make_order(policy: str, sequence: str = None):
    # sequence=None defers to the maintainer's default (korder's
    # DEFAULT_SEQUENCE), so the default backend lives in one place.
    def factory(
        graph: DynamicGraph,
        seed=0,
        audit: bool = False,
        policy: str = policy,
        sequence: str = sequence,
        partition: bool = False,
        parallel=None,
    ):
        from repro.core.maintainer import OrderedCoreMaintainer

        opts = {} if sequence is None else {"sequence": sequence}
        return OrderedCoreMaintainer(
            graph, policy=policy, seed=seed, audit=audit,
            partition=partition, parallel=parallel, **opts
        )

    return factory


def _make_simplified(policy: str, sequence: str = None):
    # Same deferred-default contract — and the same batch-scheduler
    # knobs — as _make_order: since the simplified engine gained
    # batch-native runs, partition/parallel schedule them identically.
    def factory(
        graph: DynamicGraph,
        seed=0,
        audit: bool = False,
        policy: str = policy,
        sequence: str = sequence,
        partition: bool = False,
        parallel=None,
    ):
        from repro.core.simplified import SimplifiedCoreMaintainer

        opts = {} if sequence is None else {"sequence": sequence}
        return SimplifiedCoreMaintainer(
            graph, policy=policy, seed=seed, audit=audit,
            partition=partition, parallel=parallel, **opts
        )

    return factory


def _make_sharded(
    graph: DynamicGraph,
    seed=0,
    audit: bool = False,
    policy: str = "small",
    sequence: str = None,
    parallel=None,
    reshard: str = "off",
    partition: bool = True,
    engine: str = "order",
):
    from repro.engine.sharded import ShardedOrderEngine

    opts = {} if sequence is None else {"sequence": sequence}
    return ShardedOrderEngine(
        graph, policy=policy, seed=seed, audit=audit, parallel=parallel,
        reshard=reshard, partition=partition, engine=engine, **opts
    )


def _make_sharded_simplified(
    graph: DynamicGraph,
    seed=0,
    audit: bool = False,
    policy: str = "small",
    sequence: str = None,
    parallel=None,
    reshard: str = "off",
    partition: bool = True,
):
    # The sub-engine family is what the name pins, so it is not an
    # option here — engine= on this alias is a loud EngineOptionError.
    return _make_sharded(
        graph, seed=seed, audit=audit, policy=policy, sequence=sequence,
        parallel=parallel, reshard=reshard, partition=partition,
        engine="order-simplified",
    )


def _make_traversal(graph: DynamicGraph, h: int = 2, seed=None, audit: bool = False):
    from repro.traversal.maintainer import TraversalCoreMaintainer

    return TraversalCoreMaintainer(graph, h=h, audit=audit)


def _make_naive(graph: DynamicGraph, seed=None, audit: bool = False):
    from repro.naive.maintainer import NaiveCoreMaintainer

    return NaiveCoreMaintainer(graph)


def _register_order_family(base: str, maker) -> None:
    """Register ``base`` plus the alias block every order-family engine
    carries: ``-small``/``-large``/``-random`` pin the Section VI
    generation policy, ``-om``/``-treap`` pin the sequence backend
    (under the paper's ``"small"`` policy).  ``maker(policy, sequence=)``
    must return a factory, like :func:`_make_order`."""
    register_engine(base, maker("small"))
    for policy in ("small", "large", "random"):
        register_engine(f"{base}-{policy}", maker(policy))
    for sequence in ("om", "treap"):
        register_engine(f"{base}-{sequence}", maker("small", sequence=sequence))


_register_order_family("order", _make_order)
_register_order_family("order-simplified", _make_simplified)
register_engine("order-sharded", _make_sharded)
register_engine("order-sharded-simplified", _make_sharded_simplified)
def _make_traversal_at(h: int):
    def factory(graph: DynamicGraph, seed=None, audit: bool = False):
        return _make_traversal(graph, h=h, seed=seed, audit=audit)

    return factory


register_engine("naive", _make_naive)
register_engine("trav", _make_traversal_at(2))
for _h in (2, 3, 4, 5, 6):
    register_engine(f"trav-{_h}", _make_traversal_at(_h))

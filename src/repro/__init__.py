"""repro — order-based k-core maintenance for dynamic graphs.

A from-scratch Python reproduction of

    Yikai Zhang, Jeffrey Xu Yu, Ying Zhang, Lu Qin.
    "A Fast Order-Based Approach for Core Maintenance." ICDE 2017.

The library maintains the core number of every vertex of an undirected
graph under edge (and vertex) insertions and removals.  Three engines share
one interface:

* :class:`~repro.core.maintainer.OrderedCoreMaintainer` — the paper's
  order-based algorithm (``OrderInsert`` / ``OrderRemoval``);
* :class:`~repro.traversal.maintainer.TraversalCoreMaintainer` — the
  traversal baseline (Sariyüce et al.), with the multi-hop ``Trav-h``
  enhancement;
* :class:`~repro.naive.maintainer.NaiveCoreMaintainer` — full
  recomputation (oracle).

Quickstart
----------
>>> from repro import DynamicGraph, OrderedCoreMaintainer
>>> g = DynamicGraph([(0, 1), (1, 2), (2, 0), (2, 3)])
>>> m = OrderedCoreMaintainer(g)
>>> m.core_of(0), m.core_of(3)
(2, 1)
>>> m.insert_edge(3, 0).changed  # 3 joins the triangle's 2-core
(3,)
"""

from repro._version import __version__
from repro.core.base import CoreMaintainer, UpdateResult
from repro.core.decomposition import core_numbers, korder_decomposition
from repro.core.maintainer import OrderedCoreMaintainer
from repro.graphs.datasets import dataset_names, load_dataset
from repro.graphs.temporal import TemporalEdgeStream
from repro.graphs.undirected import DynamicGraph
from repro.naive.maintainer import NaiveCoreMaintainer
from repro.streaming import SlidingWindowCoreMonitor
from repro.traversal.maintainer import TraversalCoreMaintainer

__all__ = [
    "CoreMaintainer",
    "DynamicGraph",
    "NaiveCoreMaintainer",
    "OrderedCoreMaintainer",
    "SlidingWindowCoreMonitor",
    "TemporalEdgeStream",
    "TraversalCoreMaintainer",
    "UpdateResult",
    "__version__",
    "core_numbers",
    "dataset_names",
    "korder_decomposition",
    "load_dataset",
]

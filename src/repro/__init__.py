"""repro — order-based k-core maintenance for dynamic graphs.

A from-scratch Python reproduction of

    Yikai Zhang, Jeffrey Xu Yu, Ying Zhang, Lu Qin.
    "A Fast Order-Based Approach for Core Maintenance." ICDE 2017.

The library maintains the core number of every vertex of an undirected
graph under edge (and vertex) insertions and removals.

The service façade
------------------
:class:`~repro.service.CoreService` is the public entry point: a
long-lived session that commits updates transactionally, answers k-core
queries, and streams :class:`~repro.service.CoreEvent` records to
subscribers (see the top-level README for the full tour):

>>> from repro import CoreService
>>> svc = CoreService.open([(0, 1), (1, 2), (2, 0)])
>>> with svc.transaction() as tx:
...     _ = tx.insert(0, 3).insert(1, 3)
>>> svc.core(3), svc.degeneracy()
(2, 2)

The engine layer
----------------
Three engines implement one interface
(:class:`~repro.engine.base.CoreMaintainer`) and are built by name
through the engine registry:

>>> from repro import DynamicGraph, make_engine
>>> engine = make_engine("order", DynamicGraph([(0, 1), (1, 2), (2, 0)]))
>>> engine.core_of(0)
2

* ``"order"`` — :class:`~repro.core.maintainer.OrderedCoreMaintainer`,
  the paper's order-based algorithm (``OrderInsert`` / ``OrderRemoval``;
  ``order-large`` / ``order-random`` select the Section VI heuristics;
  ``sequence="om" | "treap"`` — or the ``order-om`` / ``order-treap``
  aliases — picks the k-order block backend: O(1) tagged
  order-maintenance lists, the default, or the original
  order-statistic treaps);
* ``"trav-<h>"`` — :class:`~repro.traversal.maintainer.TraversalCoreMaintainer`,
  the traversal baseline (Sariyüce et al.) with hop count ``h``;
* ``"naive"`` — :class:`~repro.naive.maintainer.NaiveCoreMaintainer`,
  full recomputation (oracle).

New engines plug in with :func:`~repro.engine.registry.register_engine`.

The batch pipeline
------------------
Mixed insert/remove workloads — the regime where order-based maintenance
wins (Fig. 12) — go through :class:`~repro.engine.batch.Batch`:

>>> from repro import Batch
>>> batch = Batch.inserts([(0, 3), (1, 3)]).remove(0, 1)
>>> result = engine.apply_batch(batch)
>>> result.ops
3

Every engine accepts any batch; the order engine coalesces its ``mcd``
repair per same-kind run, and the naive engine recomputes once per batch.
:class:`~repro.engine.batch.BatchResult` aggregates net core changes,
search-space size, per-kind op counts and wall time.

Quickstart
----------
>>> from repro import DynamicGraph, OrderedCoreMaintainer
>>> g = DynamicGraph([(0, 1), (1, 2), (2, 0), (2, 3)])
>>> m = OrderedCoreMaintainer(g)
>>> m.core_of(0), m.core_of(3)
(2, 1)
>>> m.insert_edge(3, 0).changed  # 3 joins the triangle's 2-core
(3,)
"""

from repro._version import __version__
from repro.core.decomposition import core_numbers, korder_decomposition
from repro.core.maintainer import OrderedCoreMaintainer
from repro.engine import (
    Batch,
    BatchResult,
    CoreMaintainer,
    UpdateResult,
    available_engines,
    make_engine,
    register_engine,
)
from repro.graphs.datasets import dataset_names, load_dataset
from repro.graphs.temporal import TemporalEdgeStream
from repro.graphs.undirected import DynamicGraph
from repro.naive.maintainer import NaiveCoreMaintainer
from repro.service import CommitReceipt, CoreEvent, CoreService
from repro.streaming import SlidingWindowCoreMonitor
from repro.traversal.maintainer import TraversalCoreMaintainer

__all__ = [
    "Batch",
    "BatchResult",
    "CommitReceipt",
    "CoreEvent",
    "CoreMaintainer",
    "CoreService",
    "DynamicGraph",
    "NaiveCoreMaintainer",
    "OrderedCoreMaintainer",
    "SlidingWindowCoreMonitor",
    "TemporalEdgeStream",
    "TraversalCoreMaintainer",
    "UpdateResult",
    "__version__",
    "available_engines",
    "core_numbers",
    "dataset_names",
    "korder_decomposition",
    "load_dataset",
    "make_engine",
    "register_engine",
]

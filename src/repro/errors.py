"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError`, so a
caller can catch the whole family with one ``except`` clause while still
being able to distinguish the specific failure modes below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the library."""


class GraphError(ReproError):
    """Base class for errors about the graph structure itself."""


class VertexNotFoundError(GraphError, KeyError):
    """A vertex referenced by an operation is not present in the graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class EdgeNotFoundError(GraphError, KeyError):
    """An edge referenced by an operation is not present in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.edge = (u, v)


class EdgeExistsError(GraphError, ValueError):
    """An edge being inserted is already present in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) already exists")
        self.edge = (u, v)


class SelfLoopError(GraphError, ValueError):
    """Self loops are not supported by k-core semantics in this library."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"self loop on vertex {vertex!r} is not allowed")
        self.vertex = vertex


class MaintainerError(ReproError):
    """Base class for core-maintenance engine errors."""


class StaleIndexError(MaintainerError, RuntimeError):
    """The maintained index no longer matches the graph it was built for."""


class InvariantViolationError(MaintainerError, AssertionError):
    """An internal invariant audit failed (indicates a library bug)."""


class BatchError(ReproError, ValueError):
    """A :class:`repro.engine.batch.Batch` was constructed incorrectly."""


class EngineOptionError(ReproError, TypeError):
    """An engine factory received an option it does not understand."""

    def __init__(self, engine: str, stray: tuple, accepted: tuple) -> None:
        noun = "option" if len(stray) == 1 else "options"
        super().__init__(
            f"engine {engine!r} got unknown {noun} "
            f"{', '.join(repr(s) for s in stray)}; accepted options: "
            f"{', '.join(accepted) if accepted else '(none)'}"
        )
        self.engine = engine
        self.stray = stray
        self.accepted = accepted


class ServiceError(ReproError, RuntimeError):
    """A :class:`repro.service.CoreService` operation was invalid."""


class TransactionError(ServiceError):
    """A service transaction was used after commit or rollback."""


class SubscriptionOverflowError(ServiceError):
    """A bounded subscription's buffer filled under the ``error`` policy.

    Raised out of the commit path (the commit itself has already been
    applied — the same contract as a subscriber callback that raises).
    """


class LogCorruptionError(ServiceError):
    """A write-ahead commit log is unreadable beyond normal tail tearing.

    Torn *tail* records (a crash mid-append) are expected and repaired
    by truncation; this error means something worse — a bad frame with
    valid records after it, a missing or malformed header, or a record
    that does not apply to the recovered snapshot state.
    """


class WorkloadError(ReproError, ValueError):
    """A benchmark workload was mis-specified (e.g. sampling too many edges)."""


class ScenarioError(ReproError, ValueError):
    """A workload scenario was mis-specified, or replays diverged.

    Raised for unknown scenario names, invalid generator parameters, and
    by the replay driver's agreement check when two engines (or a live
    and a recorded run) produce different per-tick core maps.
    """


class TraceError(ReproError, ValueError):
    """A recorded scenario trace is unreadable.

    Carries the byte offset of the first bad frame so a truncated or
    corrupted artifact can be diagnosed precisely.
    """

    def __init__(self, message: str, *, offset: int = -1) -> None:
        if offset >= 0:
            message = f"{message} (at byte offset {offset})"
        super().__init__(message)
        self.offset = offset


class EdgeListFormatError(ReproError, ValueError):
    """An edge-list file has a malformed or out-of-contract line.

    Names the file and the 1-based line number, unlike the bare
    ``ValueError`` ``int()`` would raise.
    """

    def __init__(self, path: object, lineno: int, reason: str) -> None:
        super().__init__(f"{path}:{lineno}: {reason}")
        self.path = str(path)
        self.lineno = lineno
        self.reason = reason


class DatasetError(ReproError, KeyError):
    """An unknown dataset name was requested from the registry."""

    def __init__(self, name: str, known: tuple[str, ...]) -> None:
        super().__init__(
            f"unknown dataset {name!r}; known datasets: {', '.join(known)}"
        )
        self.name = name
        self.known = known

"""The common scenario shape: timed :class:`Tick` batches over a base graph.

Every workload this library replays — synthetic generator output
(:mod:`repro.scenarios.generators`), recorded traces
(:mod:`repro.scenarios.trace`) and real temporal edge lists
(:mod:`repro.scenarios.loaders`) — reduces to one :class:`Scenario`: a
starting edge set plus a strictly time-ordered sequence of
:class:`~repro.engine.batch.Batch` ticks.  The replay driver
(:mod:`repro.scenarios.replay`) pushes any scenario through a
:class:`~repro.service.CoreService`, one commit per tick, so benches,
hypothesis suites and the CLI all measure exactly the same streams.

A scenario is *valid by construction*: every insert targets an absent
edge and every removal a present one when the ticks are applied in order
from the base graph, so :meth:`Batch.check_applicable` never fires
mid-replay.  :class:`ScenarioBuilder` maintains that invariant for
generators and loaders by tracking the live edge set as ops are staged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Optional, Sequence

from repro.engine.batch import INSERT, REMOVE, Batch, normalize_edge
from repro.errors import ScenarioError
from repro.graphs.undirected import DynamicGraph

Vertex = Hashable
Edge = tuple[Vertex, Vertex]


@dataclass(frozen=True)
class Tick:
    """One timed unit of replay: all of ``batch`` commits at time ``t``."""

    t: float
    batch: Batch

    def __len__(self) -> int:
        return len(self.batch)


class Scenario:
    """A deterministic, replayable stream of timed batch ticks.

    Parameters
    ----------
    name:
        Scenario family (a :mod:`~repro.scenarios.generators` registry
        name) or a free-form label for loaded traces.
    seed:
        The seed the stream was generated from (``0`` for real traces).
    params:
        The resolved generator parameters — enough, together with
        ``name`` and ``seed``, to regenerate the stream exactly; that is
        what makes recorded traces verifiable byte-for-byte.
    base_edges:
        Edges present before the first tick (the replay's base graph).
    ticks:
        :class:`Tick` instances with strictly increasing timestamps.
    """

    __slots__ = ("name", "seed", "params", "base_edges", "ticks")

    def __init__(
        self,
        name: str,
        *,
        seed: int = 0,
        params: Optional[dict] = None,
        base_edges: Iterable[Edge] = (),
        ticks: Sequence[Tick] = (),
    ) -> None:
        self.name = str(name)
        self.seed = seed
        self.params = dict(params or {})
        self.base_edges: list[Edge] = [
            normalize_edge(u, v) for u, v in base_edges
        ]
        if len(set(self.base_edges)) != len(self.base_edges):
            raise ScenarioError(
                f"scenario {self.name!r} has duplicate base edges"
            )
        self.ticks: list[Tick] = list(ticks)
        last: Optional[float] = None
        for tick in self.ticks:
            if not isinstance(tick, Tick):
                raise ScenarioError(
                    f"scenario ticks must be Tick instances, got "
                    f"{type(tick).__name__}"
                )
            if last is not None and tick.t <= last:
                raise ScenarioError(
                    f"scenario {self.name!r} tick timestamps must be "
                    f"strictly increasing: {tick.t} after {last}"
                )
            last = tick.t

    # ------------------------------------------------------------------

    @property
    def n_ticks(self) -> int:
        return len(self.ticks)

    @property
    def n_ops(self) -> int:
        return sum(len(tick.batch) for tick in self.ticks)

    def counts(self) -> tuple[int, int]:
        """Total ``(insertions, removals)`` across every tick."""
        inserts = removes = 0
        for tick in self.ticks:
            i, r = tick.batch.counts()
            inserts += i
            removes += r
        return inserts, removes

    def base_graph(self) -> DynamicGraph:
        """A fresh graph holding the base edges (the replay start state)."""
        return DynamicGraph(self.base_edges)

    def plan(self) -> list[tuple[str, Edge]]:
        """The ticks flattened into one ordered ``(kind, edge)`` op list.

        The bridge to the pre-scenario workload helpers
        (:func:`repro.bench.workloads.batches_from_plan`): replaying the
        plan per edge from :meth:`base_graph` yields the same final
        cores as replaying the ticks batch by batch.
        """
        return [
            (op.kind, op.edge) for tick in self.ticks for op in tick.batch
        ]

    def describe(self) -> dict:
        """A JSON-ready summary (the CLI's ``repro gen`` report)."""
        inserts, removes = self.counts()
        return {
            "name": self.name,
            "seed": self.seed,
            "params": dict(self.params),
            "base_edges": len(self.base_edges),
            "ticks": self.n_ticks,
            "ops": self.n_ops,
            "inserts": inserts,
            "removes": removes,
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Scenario):
            return NotImplemented
        return (
            self.name == other.name
            and self.seed == other.seed
            and self.params == other.params
            and self.base_edges == other.base_edges
            and [(t.t, list(t.batch)) for t in self.ticks]
            == [(t.t, list(t.batch)) for t in other.ticks]
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hash only
        return object.__hash__(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Scenario({self.name!r}, seed={self.seed}, "
            f"base={len(self.base_edges)}, ticks={self.n_ticks}, "
            f"ops={self.n_ops})"
        )


class ScenarioBuilder:
    """Accumulate a valid scenario tick by tick.

    Tracks the live edge set (base edges plus every staged op) so
    generators and loaders can only emit applicable streams:
    :meth:`insert` of a live edge and :meth:`remove` of an absent one
    return ``False`` instead of staging an invalid op.  :meth:`tick`
    closes the staged ops into one :class:`Tick`; empty ticks are
    skipped, so the built scenario never carries no-op commits.
    """

    def __init__(
        self,
        name: str,
        *,
        seed: int = 0,
        params: Optional[dict] = None,
        base_edges: Iterable[Edge] = (),
    ) -> None:
        self._name = name
        self._seed = seed
        self._params = dict(params or {})
        self._base: list[Edge] = []
        self._live: set[Edge] = set()
        for u, v in base_edges:
            edge = normalize_edge(u, v)
            if edge not in self._live:
                self._live.add(edge)
                self._base.append(edge)
        self._ticks: list[Tick] = []
        self._pending: list[tuple[str, Edge]] = []
        self._last_t: Optional[float] = None

    @property
    def live(self) -> frozenset[Edge]:
        """The edge set after every staged op (read-only view)."""
        return frozenset(self._live)

    def insert(self, u: Vertex, v: Vertex) -> bool:
        """Stage an insertion; ``False`` if the edge is already live."""
        edge = normalize_edge(u, v)
        if edge in self._live:
            return False
        self._live.add(edge)
        self._pending.append((INSERT, edge))
        return True

    def remove(self, u: Vertex, v: Vertex) -> bool:
        """Stage a removal; ``False`` if the edge is not live."""
        edge = normalize_edge(u, v)
        if edge not in self._live:
            return False
        self._live.remove(edge)
        self._pending.append((REMOVE, edge))
        return True

    def tick(self, t: Optional[float] = None) -> bool:
        """Close the staged ops into one tick at time ``t``.

        ``t`` defaults to the next integer timestamp.  Returns whether a
        tick was emitted (staged ops were present).
        """
        if t is None:
            t = 0.0 if self._last_t is None else float(int(self._last_t) + 1)
        t = float(t)
        if self._last_t is not None and t <= self._last_t:
            raise ScenarioError(
                f"tick timestamps must be strictly increasing: "
                f"{t} after {self._last_t}"
            )
        if not self._pending:
            return False
        self._last_t = t
        self._ticks.append(Tick(t, Batch(self._pending)))
        self._pending = []
        return True

    def build(self) -> Scenario:
        """Finish: any staged ops become one final tick."""
        self.tick()
        return Scenario(
            self._name,
            seed=self._seed,
            params=self._params,
            base_edges=self._base,
            ticks=self._ticks,
        )

"""Parameterized scenario generators: deterministic, seeded update streams.

Each generator returns a :class:`~repro.scenarios.base.Scenario` — a base
graph plus strictly time-ordered :class:`~repro.engine.batch.Batch` ticks
— and is **byte-reproducible**: the same ``(name, seed, params)`` always
produces the identical stream, which is what lets a recorded trace
(:mod:`repro.scenarios.trace`) be verified against its header.

The families target the engines' distinct stress axes:

``burst``
    A quiet background trickle punctuated by dense arrival bursts inside
    a small vertex pocket — the flash-sale / breaking-news shape that
    batched pipelines must absorb without per-edge pricing.
``sliding-window``
    Steady arrivals with expiry after a fixed window — the monitor's
    deployment shape (every tick mixes removals of the expiring cohort
    with fresh inserts).
``flash-crowd``
    A power-law core where waves of new vertices pile onto a celebrity
    and each other, dwell, then dissolve — large core promotions
    followed by symmetric demotions.
``relabel-storm``
    Same-level chain insertions clustered at a few anchors of a long
    path: every new edge lands in the ``K=1`` order block at the same
    position, the adversarial pattern for tag-based order-maintenance
    labels (Bender relabel cascades).
``shard-merge-storm``
    Disjoint clique pockets repeatedly bridged into one component and
    severed again — every cycle forces the sharded engine to merge
    sub-engines and split them back.
``mixed``
    The Fig. 12-style interleaved insert/remove mix (the one source of
    truth for :func:`repro.bench.workloads.interleave_removals`).
"""

from __future__ import annotations

import inspect
import random
from typing import Callable, Hashable, Sequence

from repro.errors import ScenarioError, WorkloadError
from repro.graphs import generators as graph_generators
from repro.scenarios.base import Scenario, ScenarioBuilder

Vertex = Hashable
Edge = tuple[Vertex, Vertex]

#: Multiplier keeping integer size parameters proportional under ``scale``.
_MIN_SIZE = 8


def _rng(seed: int, salt: int) -> random.Random:
    """A deterministic stream per (seed, generator) — integer-seeded so
    reproducibility never depends on string hashing."""
    return random.Random((int(seed) & 0xFFFFFFFF) * 1_000_003 + salt)


def _scaled(base: int, scale: float, minimum: int = _MIN_SIZE) -> int:
    if scale <= 0:
        raise ScenarioError(f"scale must be positive, got {scale}")
    return max(minimum, int(base * scale))


def _pick_new_edge(rng: random.Random, n: int, builder: ScenarioBuilder,
                   tries: int = 32) -> bool:
    """Insert one random absent edge among vertices ``0..n-1``; bounded
    retries keep generation deterministic even near saturation."""
    for _ in range(tries):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and builder.insert(u, v):
            return True
    return False


# ----------------------------------------------------------------------
# Families
# ----------------------------------------------------------------------

def burst_arrivals(
    seed: int = 0,
    *,
    scale: float = 1.0,
    ticks: int = 32,
    trickle: int = 4,
    burst_every: int = 8,
    burst_size: int = 48,
    pocket: int = 16,
) -> Scenario:
    """Background trickle with periodic dense bursts in a small pocket.

    Every ``burst_every``-th tick lands ``burst_size`` extra edges among
    a ``pocket``-sized vertex subset (re-drawn per burst); the previous
    burst's pocket dissolves one tick before the next burst fires, so
    the stream carries symmetric removal pressure too.
    """
    params = dict(scale=scale, ticks=ticks, trickle=trickle,
                  burst_every=burst_every, burst_size=burst_size,
                  pocket=pocket)
    if ticks < 1 or trickle < 0 or burst_every < 1 or burst_size < 1:
        raise ScenarioError(f"invalid burst parameters: {params}")
    n = _scaled(160, scale, minimum=24)
    pocket = max(4, min(pocket, n // 2))
    base = graph_generators.chung_lu(n, 3.0, seed=seed)
    builder = ScenarioBuilder(
        "burst", seed=seed, params=params, base_edges=base
    )
    rng = _rng(seed, 11)
    last_burst: list[Edge] = []
    for t in range(ticks):
        if last_burst and (t + 1) % burst_every == 0:
            # Dissolve the previous pocket just before the next burst.
            for u, v in last_burst:
                builder.remove(u, v)
            last_burst = []
        for _ in range(trickle):
            _pick_new_edge(rng, n, builder)
        if t % burst_every == 0:
            members = rng.sample(range(n), pocket)
            burst: list[Edge] = []
            guard = 0
            while len(burst) < burst_size and guard < 20 * burst_size:
                guard += 1
                u = members[rng.randrange(pocket)]
                v = members[rng.randrange(pocket)]
                if u != v and builder.insert(u, v):
                    burst.append((u, v))
            last_burst = burst
        builder.tick(float(t))
    return builder.build()


def sliding_window_churn(
    seed: int = 0,
    *,
    scale: float = 1.0,
    ticks: int = 48,
    arrivals: int = 6,
    window: int = 8,
) -> Scenario:
    """Steady arrivals that expire ``window`` ticks later.

    Each tick's batch removes the cohort that arrived ``window`` ticks
    ago, then inserts ``arrivals`` fresh random edges — the sliding-
    window monitor's workload as one mixed batch per tick.
    """
    params = dict(scale=scale, ticks=ticks, arrivals=arrivals, window=window)
    if ticks < 1 or arrivals < 1 or window < 1:
        raise ScenarioError(f"invalid sliding-window parameters: {params}")
    n = _scaled(120, scale, minimum=16)
    builder = ScenarioBuilder("sliding-window", seed=seed, params=params)
    rng = _rng(seed, 23)
    cohorts: list[list[Edge]] = []
    for t in range(ticks):
        if t >= window:
            for u, v in cohorts[t - window]:
                builder.remove(u, v)
        cohort: list[Edge] = []
        guard = 0
        while len(cohort) < arrivals and guard < 20 * arrivals:
            guard += 1
            u = rng.randrange(n)
            v = rng.randrange(n)
            if u != v and builder.insert(u, v):
                cohort.append((u, v))
        cohorts.append(cohort)
        builder.tick(float(t))
    return builder.build()


def flash_crowd(
    seed: int = 0,
    *,
    scale: float = 1.0,
    waves: int = 3,
    crowd: int = 18,
    links: int = 3,
    dwell: int = 2,
) -> Scenario:
    """Waves of new vertices piling onto a power-law core's celebrity.

    Each wave arrives over two ticks (every member links to the current
    celebrity and to ``links`` earlier members), dwells for ``dwell``
    ticks of light background traffic, then dissolves over two ticks —
    big core promotions followed by the symmetric demotions.
    """
    params = dict(scale=scale, waves=waves, crowd=crowd, links=links,
                  dwell=dwell)
    if waves < 1 or crowd < 2 or links < 0 or dwell < 0:
        raise ScenarioError(f"invalid flash-crowd parameters: {params}")
    n = _scaled(140, scale, minimum=30)
    base = graph_generators.powerlaw_cluster(
        n, m_attach=3, triangle_prob=0.5, seed=seed
    )
    degree: dict[int, int] = {}
    for u, v in base:
        degree[u] = degree.get(u, 0) + 1
        degree[v] = degree.get(v, 0) + 1
    celebrities = sorted(degree, key=lambda v: (-degree[v], v))[:waves]
    builder = ScenarioBuilder(
        "flash-crowd", seed=seed, params=params, base_edges=base
    )
    rng = _rng(seed, 37)
    t = 0.0

    def next_tick() -> float:
        nonlocal t
        builder.tick(t)
        t += 1.0
        return t

    fresh = n
    for wave in range(waves):
        celebrity = celebrities[wave % len(celebrities)]
        members: list[int] = []
        wave_edges: list[Edge] = []
        for half in range(2):  # the crowd arrives over two ticks
            for _ in range(crowd // 2 + (crowd % 2 if half else 0)):
                member = fresh
                fresh += 1
                if builder.insert(member, celebrity):
                    wave_edges.append((member, celebrity))
                peers = members[-links:] if links else []
                for peer in peers:
                    if builder.insert(member, peer):
                        wave_edges.append((member, peer))
                members.append(member)
            next_tick()
        for _ in range(dwell):  # light background while the crowd dwells
            _pick_new_edge(rng, n, builder)
            _pick_new_edge(rng, n, builder)
            next_tick()
        half_point = len(wave_edges) // 2  # dissolve over two ticks
        for u, v in wave_edges[:half_point]:
            builder.remove(u, v)
        next_tick()
        for u, v in wave_edges[half_point:]:
            builder.remove(u, v)
        next_tick()
    return builder.build()


def relabel_storm(
    seed: int = 0,
    *,
    scale: float = 1.0,
    ticks: int = 24,
    chain: int = 24,
    anchors: int = 4,
) -> Scenario:
    """Same-level chain insertions clustered at a few path anchors.

    The base graph is a long path (every vertex at core 1).  Each tick
    grows a ``chain``-long pendant chain from one anchor: every new
    vertex lands in the same ``K=1`` order block directly after its
    predecessor — the pattern that concentrates order-list insertions
    at one label range and provokes range-relabel storms.  Chains are
    retired two visits later, so anchors churn instead of only growing.
    """
    params = dict(scale=scale, ticks=ticks, chain=chain, anchors=anchors)
    if ticks < 1 or chain < 1 or anchors < 1:
        raise ScenarioError(f"invalid relabel-storm parameters: {params}")
    path_len = _scaled(240, scale, minimum=32)
    base = [(i, i + 1) for i in range(path_len - 1)]
    anchors = min(anchors, path_len)
    anchor_at = [
        (i * path_len) // anchors for i in range(anchors)
    ]
    builder = ScenarioBuilder(
        "relabel-storm", seed=seed, params=params, base_edges=base
    )
    fresh = path_len
    history: dict[int, list[list[Edge]]] = {a: [] for a in anchor_at}
    for t in range(ticks):
        anchor = anchor_at[t % anchors]
        grown = history[anchor]
        if len(grown) >= 2:  # retire the chain grown two visits ago
            for u, v in grown.pop(0):
                builder.remove(u, v)
        links: list[Edge] = []
        previous = anchor
        for _ in range(chain):
            builder.insert(previous, fresh)
            links.append((previous, fresh))
            previous = fresh
            fresh += 1
        grown.append(links)
        builder.tick(float(t))
    return builder.build()


def shard_merge_storm(
    seed: int = 0,
    *,
    scale: float = 1.0,
    cycles: int = 6,
    pockets: int = 6,
    pocket_size: int = 6,
) -> Scenario:
    """Disjoint clique pockets repeatedly bridged and severed.

    The base graph is ``pockets`` disjoint cliques — one connected
    component each, so the sharded engine materializes one sub-engine
    per pocket.  Every cycle inserts a ring of bridges (forcing a chain
    of shard merges into one component) and the next tick removes them
    all (forcing the splits back); bridge endpoints rotate per cycle.
    """
    params = dict(scale=scale, cycles=cycles, pockets=pockets,
                  pocket_size=pocket_size)
    if cycles < 1 or pockets < 2 or pocket_size < 2:
        raise ScenarioError(f"invalid shard-merge-storm parameters: {params}")
    pockets = max(2, int(pockets * scale)) if scale != 1.0 else pockets
    base: list[Edge] = []
    members: list[list[int]] = []
    vid = 0
    for _ in range(pockets):
        group = list(range(vid, vid + pocket_size))
        vid += pocket_size
        members.append(group)
        for i, u in enumerate(group):
            for v in group[i + 1:]:
                base.append((u, v))
    builder = ScenarioBuilder(
        "shard-merge-storm", seed=seed, params=params, base_edges=base
    )
    rng = _rng(seed, 53)
    t = 0.0
    for _ in range(cycles):
        bridges: list[Edge] = []
        for i in range(pockets):
            a = members[i][rng.randrange(pocket_size)]
            b = members[(i + 1) % pockets][rng.randrange(pocket_size)]
            if builder.insert(a, b):
                bridges.append((a, b))
        builder.tick(t)
        t += 1.0
        for a, b in bridges:
            builder.remove(a, b)
        builder.tick(t)
        t += 1.0
    return builder.build()


# ----------------------------------------------------------------------
# The interleaved mix (shared with repro.bench.workloads)
# ----------------------------------------------------------------------

def interleaved_plan(
    present_pool: Sequence[Edge],
    insertions: Sequence[Edge],
    p: float,
    seed: int = 0,
) -> list[tuple[str, Edge]]:
    """Fig. 12's mixed plan: after each insertion, with probability ``p``
    remove one random edge that is currently present.

    ``present_pool`` seeds the removable set; inserted edges join it.
    Returns an ordered op list of ``("insert"|"remove", edge)`` pairs.
    This is the one source of truth for the update-mix semantics —
    :func:`repro.bench.workloads.interleave_removals` and the ``mixed``
    scenario both delegate here.
    """
    if not 0.0 <= p <= 1.0:
        raise WorkloadError(f"removal probability {p} outside [0, 1]")
    rng = random.Random(seed)
    removable = list(present_pool)
    plan: list[tuple[str, Edge]] = []
    for edge in insertions:
        plan.append(("insert", edge))
        removable.append(edge)
        if removable and rng.random() < p:
            index = rng.randrange(len(removable))
            victim = removable[index]
            removable[index] = removable[-1]
            removable.pop()
            plan.append(("remove", victim))
    return plan


def mixed_stream(
    seed: int = 0,
    *,
    scale: float = 1.0,
    tick_ops: int = 20,
    p: float = 0.2,
) -> Scenario:
    """The interleaved insert/remove mix chunked into fixed-size ticks.

    A uniform random base graph, a disjoint pool of insertions, and the
    :func:`interleaved_plan` mix at removal probability ``p``; every
    ``tick_ops`` consecutive ops form one tick.
    """
    params = dict(scale=scale, tick_ops=tick_ops, p=p)
    if tick_ops < 1:
        raise ScenarioError(f"invalid mixed parameters: {params}")
    n = _scaled(150, scale, minimum=24)
    edges = graph_generators.erdos_renyi_gnm(
        n, max(n, int(2.2 * n)), seed=seed
    )
    split = (len(edges) * 3) // 5
    base, insertions = edges[:split], edges[split:]
    plan = interleaved_plan(base, insertions, p, seed=seed)
    builder = ScenarioBuilder(
        "mixed", seed=seed, params=params, base_edges=base
    )
    t = 0.0
    staged = 0
    for kind, (u, v) in plan:
        if kind == "insert":
            builder.insert(u, v)
        else:
            builder.remove(u, v)
        staged += 1
        if staged == tick_ops:
            builder.tick(t)
            t += 1.0
            staged = 0
    return builder.build()


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

#: Scenario family name -> generator.
SCENARIOS: dict[str, Callable[..., Scenario]] = {
    "burst": burst_arrivals,
    "sliding-window": sliding_window_churn,
    "flash-crowd": flash_crowd,
    "relabel-storm": relabel_storm,
    "shard-merge-storm": shard_merge_storm,
    "mixed": mixed_stream,
}


def available_scenarios() -> list[str]:
    """Registered family names, sorted."""
    return sorted(SCENARIOS)


def scenario_params(name: str) -> tuple[str, ...]:
    """The keyword parameters a family accepts (besides ``seed``)."""
    factory = SCENARIOS.get(name)
    if factory is None:
        raise ScenarioError(
            f"unknown scenario {name!r}; known: "
            f"{', '.join(available_scenarios())}"
        )
    signature = inspect.signature(factory)
    return tuple(
        p.name for p in signature.parameters.values()
        if p.kind is inspect.Parameter.KEYWORD_ONLY
    )


def make_scenario(name: str, seed: int = 0, **params) -> Scenario:
    """Build a registered scenario family by name.

    Unknown names and stray parameters raise
    :class:`~repro.errors.ScenarioError` naming what is accepted — the
    same no-option-swallowing contract as
    :func:`repro.engine.registry.make_engine`.
    """
    accepted = scenario_params(name)
    stray = tuple(k for k in params if k not in accepted)
    if stray:
        noun = "parameter" if len(stray) == 1 else "parameters"
        raise ScenarioError(
            f"scenario {name!r} got unknown {noun} "
            f"{', '.join(repr(s) for s in stray)}; accepted: "
            f"{', '.join(accepted)}"
        )
    return SCENARIOS[name](seed=seed, **params)

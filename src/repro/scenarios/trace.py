"""Recorded scenario traces: a durable, framed-JSONL stream artifact.

A trace file makes any scenario — generated, loaded from a real temporal
network, or captured live — a replayable artifact that benches, CI and
the hypothesis suites can share.  The framing reuses the write-ahead
log's (:mod:`repro.service.wal`) crash-evident line format::

    <length> <crc32-hex> <payload>\\n

so a truncated or corrupted frame is *detected* (length or checksum
mismatch) rather than silently mis-parsed.  Unlike the WAL there is no
torn-tail repair: a trace is an immutable artifact, so any bad frame
raises :class:`~repro.errors.TraceError` with the byte offset.

Record layout (JSON payloads, canonical encoding — sorted keys, no
whitespace — so ``record -> load -> record`` round-trips byte-for-byte):

* first frame: the header — format tag, version, scenario ``name`` /
  ``seed`` / ``params``, the base edge list, and the total tick and op
  counts (which is how :func:`verify` catches a file truncated exactly
  at a frame boundary);
* one frame per tick: ``{"kind": "tick", "seq", "t", "ops"}`` with ops
  as ``[kind, u, v]`` triples (the WAL's op encoding).
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Union

from repro.engine.batch import Batch
from repro.errors import TraceError
from repro.scenarios.base import Scenario, Tick
from repro.service.wal import _frame, _parse_frame, batch_to_ops

PathLike = Union[str, Path]

#: Trace format version; bump on framing or payload layout changes.
TRACE_VERSION = 1

#: Header tag distinguishing traces from WAL files (same framing).
TRACE_FORMAT = "repro-trace"


def _canonical(payload: dict) -> bytes:
    """Deterministic JSON bytes — the byte-identity contract."""
    try:
        return json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        ).encode()
    except (TypeError, ValueError) as exc:
        raise TraceError(
            f"trace records must be JSON-representable: {exc}"
        ) from exc


def dumps(scenario: Scenario) -> bytes:
    """Serialize a scenario to trace bytes (see :func:`record`)."""
    inserts, removes = scenario.counts()
    header = {
        "kind": "header",
        "format": TRACE_FORMAT,
        "version": TRACE_VERSION,
        "name": scenario.name,
        "seed": scenario.seed,
        "params": scenario.params,
        "base": [[u, v] for u, v in scenario.base_edges],
        "ticks": scenario.n_ticks,
        "ops": scenario.n_ops,
    }
    out = io.BytesIO()
    out.write(_frame(_canonical(header)))
    for seq, tick in enumerate(scenario.ticks):
        out.write(_frame(_canonical({
            "kind": "tick",
            "seq": seq,
            "t": tick.t,
            "ops": batch_to_ops(tick.batch),
        })))
    return out.getvalue()


def record(scenario: Scenario, target: Union[PathLike, IO[bytes]]) -> int:
    """Write a scenario as a trace; returns the bytes written.

    ``target`` is a path or a binary file object (e.g. ``stdout.buffer``
    for piping ``repro gen`` into ``repro replay``).
    """
    data = dumps(scenario)
    if hasattr(target, "write"):
        target.write(data)
    else:
        Path(target).write_bytes(data)
    return len(data)


def _parse(data: bytes, origin: str) -> tuple[dict, list[dict]]:
    """Split trace bytes into (header, tick records), offset-checked."""
    offset = 0
    header: dict = {}
    ticks: list[dict] = []
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline < 0:
            raise TraceError(
                f"trace {origin} ends with a truncated frame",
                offset=offset,
            )
        record_ = _parse_frame(data[offset:newline])
        if record_ is None:
            raise TraceError(
                f"trace {origin} has a corrupt frame", offset=offset
            )
        if offset == 0:
            if (
                record_.get("kind") != "header"
                or record_.get("format") != TRACE_FORMAT
            ):
                raise TraceError(
                    f"trace {origin} has no valid trace header "
                    f"(is this a WAL file?)",
                    offset=0,
                )
            if record_.get("version") != TRACE_VERSION:
                raise TraceError(
                    f"trace {origin} is format version "
                    f"{record_.get('version')!r}; this build reads "
                    f"version {TRACE_VERSION}",
                    offset=0,
                )
            header = record_
        elif record_.get("kind") != "tick":
            raise TraceError(
                f"trace {origin} has a record of unknown kind "
                f"{record_.get('kind')!r}",
                offset=offset,
            )
        else:
            if record_.get("seq") != len(ticks):
                raise TraceError(
                    f"trace {origin} tick sequence broken: expected "
                    f"seq {len(ticks)}, found {record_.get('seq')!r}",
                    offset=offset,
                )
            ticks.append(record_)
        offset = newline + 1
    if not header:
        raise TraceError(f"trace {origin} is empty", offset=0)
    if len(ticks) != header.get("ticks"):
        raise TraceError(
            f"trace {origin} declares {header.get('ticks')} ticks but "
            f"carries {len(ticks)} — truncated at a frame boundary?",
            offset=len(data),
        )
    return header, ticks


def loads(data: bytes, origin: str = "<bytes>") -> Scenario:
    """Rebuild a :class:`Scenario` from trace bytes."""
    header, tick_records = _parse(data, origin)
    ticks = [
        Tick(
            float(rec["t"]),
            Batch((kind, (u, v)) for kind, u, v in rec["ops"]),
        )
        for rec in tick_records
    ]
    scenario = Scenario(
        header["name"],
        seed=header["seed"],
        params=header.get("params", {}),
        base_edges=[(u, v) for u, v in header.get("base", [])],
        ticks=ticks,
    )
    if scenario.n_ops != header.get("ops"):
        raise TraceError(
            f"trace {origin} declares {header.get('ops')} ops but "
            f"carries {scenario.n_ops}"
        )
    return scenario


def load(source: Union[PathLike, IO[bytes]]) -> Scenario:
    """Load a trace from a path or binary file object."""
    if hasattr(source, "read"):
        return loads(source.read(), origin="<stream>")
    path = Path(source)
    return loads(path.read_bytes(), origin=repr(str(path)))


@dataclass(frozen=True)
class TraceInfo:
    """Outcome of :func:`verify`: the header's claims, all checked."""

    name: str
    seed: int
    params: dict
    base_edges: int
    ticks: int
    ops: int
    total_bytes: int


def verify(source: Union[PathLike, IO[bytes]]) -> TraceInfo:
    """Validate a trace end to end without building the scenario.

    Checks the framing (length + crc32 per line), the header, the tick
    sequence numbers and the declared tick/op totals; raises
    :class:`~repro.errors.TraceError` with the byte offset of the first
    problem.
    """
    if hasattr(source, "read"):
        data, origin = source.read(), "<stream>"
    else:
        path = Path(source)
        data, origin = path.read_bytes(), repr(str(path))
    header, tick_records = _parse(data, origin)
    ops = sum(len(rec["ops"]) for rec in tick_records)
    if ops != header.get("ops"):
        raise TraceError(
            f"trace {origin} declares {header.get('ops')} ops but "
            f"carries {ops}"
        )
    return TraceInfo(
        name=header["name"],
        seed=header["seed"],
        params=header.get("params", {}),
        base_edges=len(header.get("base", [])),
        ticks=len(tick_records),
        ops=ops,
        total_bytes=len(data),
    )

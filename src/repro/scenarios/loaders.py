"""Real temporal networks as scenarios: SNAP loaders and stream adapters.

The paper's evaluation replays edge-timestamped graphs (Facebook,
Youtube, DBLP); SNAP publishes such *temporal networks* as plain
``u v timestamp`` edge lists.  These adapters convert any
:class:`~repro.graphs.temporal.TemporalEdgeStream` — read from disk or
produced by the dataset registry — into the same
:class:`~repro.scenarios.base.Scenario` shape the synthetic generators
emit, so real traces replay through exactly the same driver, benches and
agreement checks.

Grouping into ticks reuses :meth:`TemporalEdgeStream.ticks` (identical
timestamps, fixed-width buckets, wall-clock windows via
``every_seconds=``, or fixed-size ``count=`` groups), and an optional
sliding ``window=`` turns an arrival-only trace into the monitor's mixed
insert/expire workload.
"""

from __future__ import annotations

import collections
from pathlib import Path
from typing import Optional, Union

from repro.engine.batch import normalize_edge
from repro.errors import ScenarioError
from repro.graphs.io import read_temporal_edge_list
from repro.graphs.temporal import TemporalEdgeStream
from repro.scenarios.base import Scenario, ScenarioBuilder

PathLike = Union[str, Path]

#: SNAP temporal networks are ``SRC DST UNIXTS`` — timestamp column 2.
SNAP_TIME_COLUMN = 2


def load_snap_stream(
    path: PathLike,
    *,
    time_column: int = SNAP_TIME_COLUMN,
    strict: bool = False,
    duplicates: str = "first",
) -> TemporalEdgeStream:
    """Read a SNAP-format temporal edge list (``u v timestamp``).

    A thin wrapper over :func:`repro.graphs.io.read_temporal_edge_list`
    with SNAP's column convention; ``#`` comments, gzip and the
    ``strict=`` / ``duplicates=`` contracts are inherited from there.
    """
    return read_temporal_edge_list(
        path, time_column, strict=strict, duplicates=duplicates
    )


def scenario_from_stream(
    stream: TemporalEdgeStream,
    *,
    name: str = "trace",
    seed: int = 0,
    every: Optional[float] = None,
    every_seconds: Optional[float] = None,
    count: Optional[int] = None,
    window: Optional[float] = None,
    params: Optional[dict] = None,
) -> Scenario:
    """Convert a temporal stream into a replayable scenario.

    The stream's arrivals are grouped into ticks with the same knobs as
    :meth:`TemporalEdgeStream.ticks` (``every`` / ``every_seconds`` /
    ``count``; default: one tick per distinct timestamp).  Arrivals of
    an edge that is already live are skipped (simple graphs; with a
    window, a re-arrival refreshes the edge's expiry instead).

    With ``window=w`` each edge expires ``w`` time units after its
    latest arrival, monitor-style: a tick's batch removes the due
    cohort first, then inserts the genuinely new arrivals — so a real
    arrival-only trace becomes a full mixed insert/remove workload.

    ``count`` grouping may stamp consecutive ticks with the same
    timestamp; those groups are coalesced into one tick (scenario ticks
    are strictly time-ordered).
    """
    if window is not None and window <= 0:
        raise ScenarioError(f"window must be positive, got {window}")
    builder = ScenarioBuilder(
        name,
        seed=seed,
        params=dict(params or {}),
    )
    expiry: dict[tuple, float] = {}
    queue: collections.deque[tuple[float, tuple]] = collections.deque()
    pending_t: Optional[float] = None

    def close_tick(next_t: Optional[float]) -> None:
        nonlocal pending_t
        if pending_t is not None and (next_t is None or next_t > pending_t):
            builder.tick(pending_t)
            pending_t = None

    for t, edges in stream.ticks(
        every, every_seconds=every_seconds, count=count
    ):
        close_tick(t)
        pending_t = t
        if window is not None:
            while queue and queue[0][0] <= t:
                due_at, edge = queue.popleft()
                if expiry.get(edge) != due_at:
                    continue  # refreshed since this entry was queued
                del expiry[edge]
                builder.remove(*edge)
        for u, v in edges:
            edge = normalize_edge(u, v)
            builder.insert(u, v)
            if window is not None:
                # New arrivals schedule an expiry; re-arrivals of a
                # live edge refresh it (stale queue entries are skipped
                # lazily, the monitor's own trick).
                due = t + window
                expiry[edge] = due
                queue.append((due, edge))
    close_tick(None)
    return builder.build()


def scenario_from_snap(
    path: PathLike,
    *,
    name: Optional[str] = None,
    seed: int = 0,
    time_column: int = SNAP_TIME_COLUMN,
    strict: bool = False,
    duplicates: str = "first",
    every: Optional[float] = None,
    every_seconds: Optional[float] = None,
    count: Optional[int] = None,
    window: Optional[float] = None,
) -> Scenario:
    """Load a SNAP-format temporal network straight into a scenario.

    ``name`` defaults to the file's stem; the grouping and ``window``
    knobs are :func:`scenario_from_stream`'s.
    """
    path = Path(path)
    stream = load_snap_stream(
        path, time_column=time_column, strict=strict, duplicates=duplicates
    )
    return scenario_from_stream(
        stream,
        name=name or path.stem.removesuffix(".txt"),
        seed=seed,
        every=every,
        every_seconds=every_seconds,
        count=count,
        window=window,
        params={"source": path.name},
    )

"""The replay driver: push any scenario through :class:`CoreService`.

One service commit per tick, with a per-tick **checkpoint** — a compact
digest of the full core map (optionally the map itself) — so two replays
can be compared tick by tick: live generation vs a recorded trace, or
the same trace across engines.  :func:`check_agreement` raises
:class:`~repro.errors.ScenarioError` naming the first divergent tick,
and :func:`replay_all` runs a scenario across an engine matrix with the
check built in; this is the substrate the cross-engine hypothesis
suites, ``repro replay --check`` and ``bench_scenarios.py`` all share.

:func:`replay_via_client` drives the same tick loop through the async
serving front's :class:`~repro.service.client.CoreClient`, so a scenario
can exercise a live :class:`~repro.service.server.CoreServer` end to end
(commits are exactly-once via the client's idempotency tokens).
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Sequence

from repro.engine.registry import DEFAULT_ENGINE
from repro.errors import ScenarioError
from repro.scenarios.base import Scenario
from repro.service import CoreService

Vertex = Hashable


def core_digest(cores: dict) -> str:
    """A stable 16-hex-digit digest of a full core map.

    Vertices are keyed by ``(type name, repr)`` so the digest is
    reproducible across runs, engines and processes regardless of dict
    order; two maps digest equal iff they are equal (up to repr
    collisions, which integer-vertex scenarios cannot produce).
    """
    payload = json.dumps(
        sorted(
            ((type(v).__name__, repr(v), c) for v, c in cores.items())
        ),
        separators=(",", ":"),
    ).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


@dataclass(frozen=True)
class TickCheckpoint:
    """The agreement-checking unit: one tick's post-commit core map."""

    seq: int
    t: float
    ops: int
    digest: str
    #: The full core map, only when the replay ran with ``keep_cores``.
    cores: Optional[dict] = None


@dataclass
class ReplayReport:
    """What one replay did, checkpointed per tick."""

    scenario: str
    engine: str
    ticks: int = 0
    ops: int = 0
    inserts: int = 0
    removes: int = 0
    elapsed: float = 0.0
    checkpoints: list = field(default_factory=list)
    final_cores: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)

    @property
    def ops_per_second(self) -> float:
        return self.ops / self.elapsed if self.elapsed > 0 else 0.0

    def digests(self) -> list[str]:
        return [cp.digest for cp in self.checkpoints]

    def summary(self) -> dict:
        """JSON-ready headline numbers (the CLI's ``repro replay``)."""
        return {
            "scenario": self.scenario,
            "engine": self.engine,
            "ticks": self.ticks,
            "ops": self.ops,
            "inserts": self.inserts,
            "removes": self.removes,
            "elapsed_seconds": round(self.elapsed, 6),
            "ops_per_second": round(self.ops_per_second, 1),
            "final_digest": (
                self.checkpoints[-1].digest if self.checkpoints else
                core_digest(self.final_cores)
            ),
        }


def replay(
    scenario: Scenario,
    *,
    engine: str = DEFAULT_ENGINE,
    seed: Optional[int] = 0,
    service: Optional[CoreService] = None,
    keep_cores: bool = False,
    **engine_opts,
) -> ReplayReport:
    """Replay a scenario, one service commit per tick.

    Opens a fresh :class:`CoreService` over the scenario's base graph
    (or adopts ``service``, which must already hold exactly that graph —
    the caller's hook for WAL-logged or subscribed replays) and applies
    every tick's batch as one commit, checkpointing the core map after
    each.  With ``keep_cores`` every checkpoint carries the full map,
    not just its digest (the hypothesis suites' exact-equality mode).
    """
    owned = service is None
    if owned:
        service = CoreService.open(
            scenario.base_graph(), engine=engine, seed=seed, **engine_opts
        )
    report = ReplayReport(
        scenario=scenario.name, engine=service.engine_name
    )
    started = time.perf_counter()
    try:
        for seq, tick in enumerate(scenario.ticks):
            receipt = service.apply(tick.batch)
            cores = service.cores()
            report.checkpoints.append(TickCheckpoint(
                seq=seq,
                t=tick.t,
                ops=len(tick.batch),
                digest=core_digest(cores),
                cores=cores if keep_cores else None,
            ))
            report.ticks += 1
            report.ops += len(tick.batch)
            inserts, removes = tick.batch.counts()
            report.inserts += inserts
            report.removes += removes
            for key, value in receipt.result.counters.items():
                report.counters[key] = report.counters.get(key, 0) + value
        report.final_cores = service.cores()
    finally:
        report.elapsed = time.perf_counter() - started
        if owned:
            service.close()
    return report


def check_agreement(reports: Sequence[ReplayReport]) -> None:
    """Assert every report checkpointed identical per-tick core maps.

    Compares full maps when both sides carry them, digests otherwise;
    raises :class:`~repro.errors.ScenarioError` naming the first
    divergent tick and the two engines.
    """
    if len(reports) < 2:
        return
    reference = reports[0]
    for other in reports[1:]:
        if len(other.checkpoints) != len(reference.checkpoints):
            raise ScenarioError(
                f"replay disagreement on {reference.scenario!r}: "
                f"{reference.engine} checkpointed "
                f"{len(reference.checkpoints)} ticks, {other.engine} "
                f"{len(other.checkpoints)}"
            )
        for a, b in zip(reference.checkpoints, other.checkpoints):
            same = (
                a.cores == b.cores
                if a.cores is not None and b.cores is not None
                else a.digest == b.digest
            )
            if not same:
                raise ScenarioError(
                    f"replay disagreement on {reference.scenario!r} at "
                    f"tick {a.seq} (t={a.t}): {reference.engine} and "
                    f"{other.engine} produced different core maps"
                )


def replay_all(
    scenario: Scenario,
    engines: Sequence[str],
    *,
    seed: Optional[int] = 0,
    keep_cores: bool = False,
    check: bool = True,
) -> Dict[str, ReplayReport]:
    """Replay one scenario across several engines, agreement-checked."""
    reports = {
        name: replay(
            scenario, engine=name, seed=seed, keep_cores=keep_cores
        )
        for name in engines
    }
    if check:
        check_agreement(list(reports.values()))
    return reports


async def replay_via_client(
    scenario: Scenario,
    client,
    *,
    keep_cores: bool = False,
) -> ReplayReport:
    """Replay through the async serving front, one commit per tick.

    ``client`` is a connected
    :class:`~repro.service.client.CoreClient`; its tenant session must
    be fresh (the base edges land as the first commit).  Checkpoints
    query the full core map after each tick, so a remote replay is
    digest-comparable with a local :func:`replay` of the same scenario.
    """
    report = ReplayReport(scenario=scenario.name, engine="client")
    started = time.perf_counter()
    if scenario.base_edges:
        await client.commit(
            [("insert", u, v) for u, v in scenario.base_edges]
        )
    for seq, tick in enumerate(scenario.ticks):
        await client.commit(
            [(op.kind, op.edge[0], op.edge[1]) for op in tick.batch]
        )
        cores = await client.cores()
        report.checkpoints.append(TickCheckpoint(
            seq=seq,
            t=tick.t,
            ops=len(tick.batch),
            digest=core_digest(cores),
            cores=cores if keep_cores else None,
        ))
        report.ticks += 1
        report.ops += len(tick.batch)
        inserts, removes = tick.batch.counts()
        report.inserts += inserts
        report.removes += removes
    report.final_cores = await client.cores()
    report.elapsed = time.perf_counter() - started
    return report

"""Workload scenarios: seeded generators, recorded traces, replay.

The subsystem that turns "a stream of updates" into a first-class,
shareable artifact:

* :mod:`~repro.scenarios.generators` — deterministic seeded workload
  families (bursts, sliding-window churn, flash crowds, relabel storms,
  shard-merge storms, mixed streams) emitting a common
  :class:`Scenario` of timed :class:`Tick` batches;
* :mod:`~repro.scenarios.trace` — a durable framed-JSONL trace format
  (the WAL's crash-evident framing) with byte-identical round-trips;
* :mod:`~repro.scenarios.loaders` — SNAP-format temporal networks and
  arbitrary :class:`~repro.graphs.temporal.TemporalEdgeStream` objects
  adapted into the same scenario shape;
* :mod:`~repro.scenarios.replay` — the driver pushing any scenario
  through :class:`~repro.service.CoreService` (or the async serving
  front) with per-tick core-map checkpoints and cross-engine agreement
  checks.
"""

from repro.scenarios.base import Scenario, ScenarioBuilder, Tick
from repro.scenarios.generators import (
    SCENARIOS,
    available_scenarios,
    burst_arrivals,
    flash_crowd,
    interleaved_plan,
    make_scenario,
    mixed_stream,
    relabel_storm,
    scenario_params,
    shard_merge_storm,
    sliding_window_churn,
)
from repro.scenarios.loaders import (
    SNAP_TIME_COLUMN,
    load_snap_stream,
    scenario_from_snap,
    scenario_from_stream,
)
from repro.scenarios.replay import (
    ReplayReport,
    TickCheckpoint,
    check_agreement,
    core_digest,
    replay,
    replay_all,
    replay_via_client,
)
from repro.scenarios.trace import (
    TRACE_FORMAT,
    TRACE_VERSION,
    TraceInfo,
    dumps,
    load,
    loads,
    record,
    verify,
)

__all__ = [
    "Scenario",
    "ScenarioBuilder",
    "Tick",
    "SCENARIOS",
    "available_scenarios",
    "scenario_params",
    "make_scenario",
    "burst_arrivals",
    "sliding_window_churn",
    "flash_crowd",
    "relabel_storm",
    "shard_merge_storm",
    "mixed_stream",
    "interleaved_plan",
    "SNAP_TIME_COLUMN",
    "load_snap_stream",
    "scenario_from_stream",
    "scenario_from_snap",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "TraceInfo",
    "dumps",
    "loads",
    "record",
    "load",
    "verify",
    "ReplayReport",
    "TickCheckpoint",
    "core_digest",
    "replay",
    "replay_all",
    "replay_via_client",
    "check_agreement",
]

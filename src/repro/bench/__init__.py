"""Benchmark harness: workloads, runners and the paper's experiments.

Every table and figure of the paper's evaluation section has a
corresponding function in :mod:`repro.bench.experiments`; the modules in
``benchmarks/`` (pytest-benchmark) and the CLI both drive those functions.
"""

from repro.bench.workloads import (
    UpdateWorkload,
    grouped_stream,
    make_workload,
    sample_edge_fraction,
    sample_vertex_fraction,
)
from repro.bench.runner import build_engine, run_updates, time_index_build

__all__ = [
    "UpdateWorkload",
    "build_engine",
    "grouped_stream",
    "make_workload",
    "run_updates",
    "sample_edge_fraction",
    "sample_vertex_fraction",
    "time_index_build",
]

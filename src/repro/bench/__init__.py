"""Benchmark harness: workloads, runners and the paper's experiments.

Every table and figure of the paper's evaluation section has a
corresponding function in :mod:`repro.bench.experiments`; the modules in
``benchmarks/`` (pytest-benchmark) and the CLI both drive those functions.
Mixed update streams can be replayed per edge (:func:`run_updates` /
:func:`run_mixed`) or through the engine batch pipeline
(:func:`batches_from_plan` + :func:`run_batches`).
"""

from repro.bench.workloads import (
    UpdateWorkload,
    batches_from_plan,
    grouped_stream,
    make_workload,
    mixed_batch_workload,
    sample_edge_fraction,
    sample_vertex_fraction,
)
from repro.bench.runner import (
    build_engine,
    build_service,
    run_batches,
    run_mixed,
    run_updates,
    time_index_build,
)

__all__ = [
    "UpdateWorkload",
    "batches_from_plan",
    "build_engine",
    "build_service",
    "grouped_stream",
    "make_workload",
    "mixed_batch_workload",
    "run_batches",
    "run_mixed",
    "run_updates",
    "sample_edge_fraction",
    "sample_vertex_fraction",
    "time_index_build",
]

"""Workload construction, mirroring Section VII's experimental setup.

The paper's recipe per dataset:

* temporal graphs (Facebook, Youtube, DBLP): take the **latest** 100,000
  edges as the update stream;
* all others: sample 100,000 edges uniformly at random;
* the base graph is the dataset *without* the update edges (their endpoint
  vertices stay, so engines know about them);
* insertion experiment: insert the stream one edge at a time;
* removal experiment: remove the same edges from the full graph;
* stability (Fig. 12): sample a large pool, split into groups, reinsert
  group by group, optionally removing a random present edge with
  probability ``p`` after each insertion;
* scalability (Fig. 11): induced subgraphs on a vertex sample, and edge
  samples keeping incident vertices.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro.engine.batch import Batch
from repro.errors import WorkloadError
from repro.graphs.datasets import LoadedDataset
from repro.graphs.undirected import DynamicGraph

Vertex = Hashable
Edge = tuple[Vertex, Vertex]


@dataclass
class UpdateWorkload:
    """A base graph plus the update edges to replay against it."""

    dataset: str
    base_edges: list[Edge] = field(repr=False)
    update_edges: list[Edge] = field(repr=False)
    vertices: set[Vertex] = field(repr=False)

    def base_graph(self) -> DynamicGraph:
        """Fresh base graph (update edges absent, all vertices present)."""
        graph = DynamicGraph(self.base_edges, vertices=self.vertices)
        return graph

    def full_graph(self) -> DynamicGraph:
        """Fresh full graph (updates included) — the removal starting point."""
        graph = DynamicGraph(self.base_edges, vertices=self.vertices)
        for u, v in self.update_edges:
            graph.add_edge(u, v)
        return graph


def make_workload(
    dataset: LoadedDataset,
    n_updates: int,
    seed: int = 0,
) -> UpdateWorkload:
    """Build the paper's update workload for one dataset.

    Temporal datasets contribute their newest ``n_updates`` edges; the
    rest contribute a uniform sample.  ``n_updates`` is capped at half the
    dataset so the base graph keeps its character.
    """
    edges = dataset.edges
    if not edges:
        raise WorkloadError(f"dataset {dataset.name} has no edges")
    n_updates = max(1, min(n_updates, len(edges) // 2))
    if dataset.spec.temporal:
        updates = edges[len(edges) - n_updates :]
        base = edges[: len(edges) - n_updates]
    else:
        rng = random.Random(seed)
        indices = set(rng.sample(range(len(edges)), n_updates))
        updates = [e for i, e in enumerate(edges) if i in indices]
        base = [e for i, e in enumerate(edges) if i not in indices]
    vertices = {u for u, _ in edges} | {v for _, v in edges}
    return UpdateWorkload(
        dataset=dataset.name,
        base_edges=base,
        update_edges=updates,
        vertices=vertices,
    )


def grouped_stream(
    dataset: LoadedDataset,
    n_groups: int,
    group_size: int,
    seed: int = 0,
) -> tuple[UpdateWorkload, list[list[Edge]]]:
    """Fig. 12 stability workload: a pool of sampled edges split into
    ``n_groups`` groups of ``group_size`` (sizes capped by availability).

    Returns the workload (base graph = dataset minus pool) and the groups.
    """
    pool_size = n_groups * group_size
    workload = make_workload(dataset, pool_size, seed=seed)
    pool = workload.update_edges
    per_group = max(1, len(pool) // n_groups)
    groups = [
        pool[i * per_group : (i + 1) * per_group] for i in range(n_groups)
    ]
    groups = [g for g in groups if g]
    return workload, groups


def interleave_removals(
    present_pool: Sequence[Edge],
    insertions: Sequence[Edge],
    p: float,
    seed: int = 0,
) -> list[tuple[str, Edge]]:
    """Fig. 12's mixed plan: after each insertion, with probability ``p``
    remove one random edge that is currently present.

    ``present_pool`` seeds the removable set; inserted edges join it.
    Returns an ordered op list of ``("insert"|"remove", edge)`` pairs.

    The update-mix semantics live in
    :func:`repro.scenarios.generators.interleaved_plan` (one source of
    truth, shared with the ``mixed`` scenario family); this is the
    bench-facing alias.
    """
    from repro.scenarios.generators import interleaved_plan

    return interleaved_plan(present_pool, insertions, p, seed=seed)


def batches_from_plan(
    plan: Sequence[tuple[str, Edge]],
    batch_size: int,
) -> list[Batch]:
    """Chunk an ordered op plan into :class:`Batch` objects.

    Consecutive slices of at most ``batch_size`` ops become one batch
    each, preserving op order inside a batch (the engine may reschedule
    a conflict-free batch, but cross-batch order is fixed).
    """
    if batch_size < 1:
        raise WorkloadError(f"batch size must be >= 1, got {batch_size}")
    return [
        Batch(plan[i : i + batch_size])
        for i in range(0, len(plan), batch_size)
    ]


def mixed_batch_workload(
    dataset: LoadedDataset,
    n_updates: int,
    batch_size: int,
    p: float = 0.2,
    seed: int = 0,
) -> tuple[UpdateWorkload, list[tuple[str, Edge]], list[Batch]]:
    """The Fig. 12-style mixed stream, both as a plan and as batches.

    Builds the standard update workload, interleaves removals with
    probability ``p`` (removals may target base edges, so every op is
    valid when replayed from the base graph), and chunks the plan into
    batches of ``batch_size`` ops.  Returns
    ``(workload, plan, batches)`` — replaying either the plan per edge or
    the batches through ``apply_batch`` from a fresh base graph yields
    the same final core numbers.
    """
    workload = make_workload(dataset, n_updates, seed=seed)
    plan = interleave_removals(
        workload.base_edges, workload.update_edges, p, seed=seed
    )
    return workload, plan, batches_from_plan(plan, batch_size)


def sample_vertex_fraction(
    dataset: LoadedDataset, fraction: float, seed: int = 0
) -> list[Edge]:
    """Edges of the subgraph induced by a ``fraction`` vertex sample
    (Fig. 11a/b: vary ``|V|``)."""
    if not 0.0 < fraction <= 1.0:
        raise WorkloadError(f"fraction {fraction} outside (0, 1]")
    vertices = {u for u, _ in dataset.edges} | {v for _, v in dataset.edges}
    rng = random.Random(seed)
    keep = set(rng.sample(sorted(vertices), max(2, int(len(vertices) * fraction))))
    return [(u, v) for u, v in dataset.edges if u in keep and v in keep]


def sample_edge_fraction(
    dataset: LoadedDataset, fraction: float, seed: int = 0
) -> list[Edge]:
    """A uniform ``fraction`` of the edges, incident vertices kept
    (Fig. 11c/d: vary ``|E|``)."""
    if not 0.0 < fraction <= 1.0:
        raise WorkloadError(f"fraction {fraction} outside (0, 1]")
    rng = random.Random(seed)
    count = max(1, int(len(dataset.edges) * fraction))
    indices = set(rng.sample(range(len(dataset.edges)), count))
    return [e for i, e in enumerate(dataset.edges) if i in indices]

"""Timed update replay (per-edge and batched) over registry engines."""

from __future__ import annotations

import time
from typing import Callable, Hashable, Sequence

from repro.analysis.metrics import UpdateLog
from repro.engine.base import CoreMaintainer
from repro.engine.batch import Batch, BatchResult
from repro.engine.registry import available_engines, make_engine
from repro.graphs.undirected import DynamicGraph

Vertex = Hashable
Edge = tuple[Vertex, Vertex]

#: Engine names accepted by :func:`build_engine` (plus ``trav-<h>``).
#: Kept for compatibility; the authoritative list is
#: :func:`repro.engine.registry.available_engines`.
ENGINE_NAMES = tuple(n for n in available_engines() if n != "trav")


def build_engine(
    name: str, graph: DynamicGraph, seed: int = 0, **opts
) -> CoreMaintainer:
    """Instantiate a maintenance engine by registry name.

    Thin wrapper over :func:`repro.engine.registry.make_engine`, kept so
    existing bench call sites (and their ``seed`` convention) still work.
    Extra keyword options (``sequence``, ``partition``, ``parallel``, …)
    pass straight through to the engine factory.
    """
    return make_engine(name, graph, seed=seed, **opts)


def run_updates(
    maintainer: CoreMaintainer,
    edges: Sequence[Edge],
    kind: str = "insert",
) -> UpdateLog:
    """Replay ``edges`` one at a time, timing each update.

    ``kind`` is ``"insert"`` or ``"remove"``.  Returns the populated
    :class:`UpdateLog` (total time = the paper's accumulated time metric).
    """
    if kind == "insert":
        op = maintainer.insert_edge
    elif kind == "remove":
        op = maintainer.remove_edge
    else:
        raise ValueError(f"kind must be 'insert' or 'remove', got {kind!r}")
    log = UpdateLog(engine=maintainer.name)
    clock = time.perf_counter
    for u, v in edges:
        started = clock()
        result = op(u, v)
        log.record(result, clock() - started)
    return log


def run_mixed(
    maintainer: CoreMaintainer,
    plan: Sequence[tuple[str, Edge]],
) -> UpdateLog:
    """Replay a mixed insert/remove plan (Fig. 12 with ``p > 0``)."""
    log = UpdateLog(engine=maintainer.name)
    clock = time.perf_counter
    for kind, (u, v) in plan:
        op = maintainer.insert_edge if kind == "insert" else maintainer.remove_edge
        started = clock()
        result = op(u, v)
        log.record(result, clock() - started)
    return log


def run_batches(
    maintainer: CoreMaintainer,
    batches: Sequence[Batch],
) -> list[BatchResult]:
    """Replay a sequence of batches through the engine's batch pipeline.

    Each :class:`BatchResult` carries its own wall time; total replay time
    is ``sum(r.seconds for r in results)``.
    """
    return [maintainer.apply_batch(batch) for batch in batches]


def time_index_build(
    factory: Callable[[DynamicGraph], CoreMaintainer],
    graph: DynamicGraph,
) -> tuple[CoreMaintainer, float]:
    """Time index creation (Table III), including core decomposition."""
    started = time.perf_counter()
    maintainer = factory(graph)
    return maintainer, time.perf_counter() - started

"""Engine factories and timed update replay."""

from __future__ import annotations

import time
from typing import Callable, Hashable, Sequence

from repro.analysis.metrics import UpdateLog
from repro.core.base import CoreMaintainer
from repro.core.maintainer import OrderedCoreMaintainer
from repro.graphs.undirected import DynamicGraph
from repro.naive.maintainer import NaiveCoreMaintainer
from repro.traversal.maintainer import TraversalCoreMaintainer

Vertex = Hashable
Edge = tuple[Vertex, Vertex]

#: Engine names accepted by :func:`build_engine` (plus ``trav-<h>``).
ENGINE_NAMES = (
    "order",
    "order-small",
    "order-large",
    "order-random",
    "naive",
    "trav-2",
    "trav-3",
    "trav-4",
    "trav-5",
    "trav-6",
)


def build_engine(
    name: str, graph: DynamicGraph, seed: int = 0
) -> CoreMaintainer:
    """Instantiate a maintenance engine by name.

    ``order`` (alias ``order-small``), ``order-large`` and ``order-random``
    select the k-order generation heuristic; ``trav-<h>`` selects the
    traversal baseline with hop count ``h``; ``naive`` recomputes.
    """
    if name in ("order", "order-small"):
        return OrderedCoreMaintainer(graph, policy="small", seed=seed)
    if name == "order-large":
        return OrderedCoreMaintainer(graph, policy="large", seed=seed)
    if name == "order-random":
        return OrderedCoreMaintainer(graph, policy="random", seed=seed)
    if name == "naive":
        return NaiveCoreMaintainer(graph)
    if name.startswith("trav-"):
        return TraversalCoreMaintainer(graph, h=int(name.split("-", 1)[1]))
    raise ValueError(f"unknown engine {name!r}; expected one of {ENGINE_NAMES}")


def run_updates(
    maintainer: CoreMaintainer,
    edges: Sequence[Edge],
    kind: str = "insert",
) -> UpdateLog:
    """Replay ``edges`` one at a time, timing each update.

    ``kind`` is ``"insert"`` or ``"remove"``.  Returns the populated
    :class:`UpdateLog` (total time = the paper's accumulated time metric).
    """
    if kind == "insert":
        op = maintainer.insert_edge
    elif kind == "remove":
        op = maintainer.remove_edge
    else:
        raise ValueError(f"kind must be 'insert' or 'remove', got {kind!r}")
    log = UpdateLog(engine=maintainer.name)
    clock = time.perf_counter
    for u, v in edges:
        started = clock()
        result = op(u, v)
        log.record(result, clock() - started)
    return log


def run_mixed(
    maintainer: CoreMaintainer,
    plan: Sequence[tuple[str, Edge]],
) -> UpdateLog:
    """Replay a mixed insert/remove plan (Fig. 12 with ``p > 0``)."""
    log = UpdateLog(engine=maintainer.name)
    clock = time.perf_counter
    for kind, (u, v) in plan:
        op = maintainer.insert_edge if kind == "insert" else maintainer.remove_edge
        started = clock()
        result = op(u, v)
        log.record(result, clock() - started)
    return log


def time_index_build(
    factory: Callable[[DynamicGraph], CoreMaintainer],
    graph: DynamicGraph,
) -> tuple[CoreMaintainer, float]:
    """Time index creation (Table III), including core decomposition."""
    started = time.perf_counter()
    maintainer = factory(graph)
    return maintainer, time.perf_counter() - started

"""Timed update replay (per-edge and batched) over service sessions.

Engines are constructed through the service façade
(:func:`build_service` → :class:`repro.service.CoreService`); the
per-edge replay helpers time the paper's update algorithms directly on
``service.engine``, while batched replays go through the façade's
commit path.
"""

from __future__ import annotations

import time
from typing import Callable, Hashable, Sequence, Union

from repro.analysis.metrics import UpdateLog
from repro.engine.base import CoreMaintainer
from repro.engine.batch import Batch, BatchResult
from repro.engine.registry import available_engines
from repro.graphs.undirected import DynamicGraph
from repro.service import CoreService

Vertex = Hashable
Edge = tuple[Vertex, Vertex]

#: Engine names accepted by :func:`build_engine` (plus ``trav-<h>``).
#: Kept for compatibility; the authoritative list is
#: :func:`repro.engine.registry.available_engines`.
ENGINE_NAMES = tuple(n for n in available_engines() if n != "trav")


def build_service(
    name: str, graph: DynamicGraph, seed: int = 0, **opts
) -> CoreService:
    """Open a :class:`~repro.service.CoreService` session by engine name.

    The bench drivers' one construction path — extra keyword options
    (``sequence``, ``partition``, ``parallel``, …) pass through to the
    engine factory, which rejects the ones it does not understand.
    """
    return CoreService.open(graph, engine=name, seed=seed, **opts)


def build_engine(
    name: str, graph: DynamicGraph, seed: int = 0, **opts
) -> CoreMaintainer:
    """Instantiate a bare maintenance engine by registry name.

    Kept for per-edge measurement call sites (and their ``seed``
    convention); equivalent to ``build_service(...).engine``.
    """
    return build_service(name, graph, seed=seed, **opts).engine


def run_updates(
    maintainer: CoreMaintainer,
    edges: Sequence[Edge],
    kind: str = "insert",
) -> UpdateLog:
    """Replay ``edges`` one at a time, timing each update.

    ``kind`` is ``"insert"`` or ``"remove"``.  Returns the populated
    :class:`UpdateLog` (total time = the paper's accumulated time metric).
    """
    if kind == "insert":
        op = maintainer.insert_edge
    elif kind == "remove":
        op = maintainer.remove_edge
    else:
        raise ValueError(f"kind must be 'insert' or 'remove', got {kind!r}")
    log = UpdateLog(engine=maintainer.name)
    clock = time.perf_counter
    for u, v in edges:
        started = clock()
        result = op(u, v)
        log.record(result, clock() - started)
    return log


def run_mixed(
    maintainer: CoreMaintainer,
    plan: Sequence[tuple[str, Edge]],
) -> UpdateLog:
    """Replay a mixed insert/remove plan (Fig. 12 with ``p > 0``)."""
    log = UpdateLog(engine=maintainer.name)
    clock = time.perf_counter
    for kind, (u, v) in plan:
        op = maintainer.insert_edge if kind == "insert" else maintainer.remove_edge
        started = clock()
        result = op(u, v)
        log.record(result, clock() - started)
    return log


def run_batches(
    target: Union[CoreService, CoreMaintainer],
    batches: Sequence[Batch],
) -> list[BatchResult]:
    """Replay a sequence of batches through the batch pipeline.

    ``target`` is a :class:`~repro.service.CoreService` (one façade
    commit per batch — receipts minted, subscribers notified) or a bare
    engine (raw ``apply_batch``, the overhead-bench baseline).  Each
    :class:`BatchResult` carries its own wall time; total replay time
    is ``sum(r.seconds for r in results)``.
    """
    if isinstance(target, CoreService):
        return [target.apply(batch).result for batch in batches]
    return [target.apply_batch(batch) for batch in batches]


def time_index_build(
    factory: Callable[[DynamicGraph], CoreMaintainer],
    graph: DynamicGraph,
) -> tuple[CoreMaintainer, float]:
    """Time index creation (Table III), including core decomposition."""
    started = time.perf_counter()
    maintainer = factory(graph)
    return maintainer, time.perf_counter() - started

"""One function per table/figure of the paper's evaluation (Section VII).

Every function is pure given its arguments (datasets are generated from
seeds) and returns plain dataclasses that :mod:`repro.bench.reporting`
renders.  Default sizes are scaled for pure Python — see DESIGN.md §2 —
and every knob (update counts, dataset scale, hop counts) is exposed so
larger runs are one argument away.

Experiment index
----------------
==========  ==========================================================
table1      dataset statistics (paper vs stand-in)
fig10a      cumulative distribution of core numbers
fig10b      cumulative distribution of K over sampled update edges
fig1        distribution of #vertices visited per insertion
fig2        ratio sum|visited| / sum|V*| (traversal vs order)
fig5        cumulative size distributions of pc / sc / oc
fig9        |V+|/|V*| under the three k-order generation heuristics
table2      accumulated insert & remove time, Order vs Trav-h
table3      index creation time per engine
fig11       scalability: vary |V| and |E| at 20%..100%
fig12       stability: grouped insertions, optional removal mix p
==========  ==========================================================
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.analysis.distributions import (
    FIG1_LABELS,
    cumulative_distribution,
)
from repro.analysis.metrics import UpdateLog
from repro.analysis.subcore import order_core, pure_core, sub_core
from repro.bench.runner import (
    build_engine,
    build_service,
    run_batches,
    run_mixed,
    run_updates,
    time_index_build,
)
from repro.bench.workloads import (
    grouped_stream,
    interleave_removals,
    make_workload,
    mixed_batch_workload,
    sample_edge_fraction,
    sample_vertex_fraction,
)
from repro.core.decomposition import core_numbers, korder_decomposition
from repro.core.korder import KOrder
from repro.core.maintainer import OrderedCoreMaintainer, compute_mcd
from repro.graphs.datasets import dataset_names, load_dataset
from repro.graphs.undirected import DynamicGraph

#: Traversal hop counts benchmarked in Table II / Table III.
DEFAULT_HOPS: tuple[int, ...] = (2, 3, 4, 5, 6)

#: Default number of update edges per dataset (the paper uses 100,000 on a
#: C++ implementation; see DESIGN.md for the scaling rationale).
DEFAULT_UPDATES = 400


# ======================================================================
# Table I — dataset statistics
# ======================================================================

@dataclass
class Table1Row:
    dataset: str
    n: int
    m: int
    avg_deg: float
    max_k: int
    paper_n: int
    paper_m: int
    paper_avg_deg: float
    paper_max_k: int


def table1(
    names: Optional[Sequence[str]] = None,
    scale: Optional[float] = None,
    seed: int = 42,
) -> list[Table1Row]:
    """Regenerate Table I: stand-in statistics next to the paper's."""
    rows = []
    for name in names or dataset_names():
        dataset = load_dataset(name, scale=scale, seed=seed)
        graph = dataset.graph()
        core = core_numbers(graph)
        paper = dataset.spec.paper
        rows.append(
            Table1Row(
                dataset=name,
                n=graph.n,
                m=graph.m,
                avg_deg=round(graph.average_degree(), 2),
                max_k=max(core.values(), default=0),
                paper_n=paper.n,
                paper_m=paper.m,
                paper_avg_deg=paper.avg_deg,
                paper_max_k=paper.max_k,
            )
        )
    return rows


# ======================================================================
# Fig. 10 — core-number and K distributions
# ======================================================================

@dataclass
class CdfResult:
    dataset: str
    xs: list[float]
    fractions: list[float]


def fig10a(
    name: str, scale: Optional[float] = None, seed: int = 42
) -> CdfResult:
    """Cumulative distribution of core numbers (Fig. 10a)."""
    dataset = load_dataset(name, scale=scale, seed=seed)
    core = core_numbers(dataset.graph())
    xs, fractions = cumulative_distribution(core.values())
    return CdfResult(name, xs, fractions)


def fig10b(
    name: str,
    n_updates: int = DEFAULT_UPDATES,
    scale: Optional[float] = None,
    seed: int = 42,
) -> CdfResult:
    """Cumulative distribution of ``K = min(core(u), core(v))`` over the
    sampled update edges (Fig. 10b)."""
    dataset = load_dataset(name, scale=scale, seed=seed)
    workload = make_workload(dataset, n_updates, seed=seed)
    core = core_numbers(workload.full_graph())
    ks = [min(core[u], core[v]) for u, v in workload.update_edges]
    xs, fractions = cumulative_distribution(ks)
    return CdfResult(name, xs, fractions)


# ======================================================================
# Figs. 1 & 2 — insertion search-space comparison
# ======================================================================

@dataclass
class InsertionVisitResult:
    dataset: str
    labels: tuple[str, ...]
    traversal_proportions: list[float]
    order_proportions: list[float]
    traversal_ratio: float
    order_ratio: float
    traversal_log: UpdateLog = field(repr=False)
    order_log: UpdateLog = field(repr=False)


def insertion_visits(
    name: str,
    n_updates: int = DEFAULT_UPDATES,
    scale: Optional[float] = None,
    seed: int = 42,
) -> InsertionVisitResult:
    """Shared machinery for Figs. 1 and 2: insert the update stream with
    both engines, recording per-edge visited counts (|V'| vs |V+|) and
    core changes (|V*|)."""
    dataset = load_dataset(name, scale=scale, seed=seed)
    workload = make_workload(dataset, n_updates, seed=seed)
    trav = build_engine("trav-2", workload.base_graph(), seed=seed)
    trav_log = run_updates(trav, workload.update_edges, "insert")
    order = build_engine("order", workload.base_graph(), seed=seed)
    order_log = run_updates(order, workload.update_edges, "insert")
    return InsertionVisitResult(
        dataset=name,
        labels=FIG1_LABELS,
        traversal_proportions=trav_log.visited_proportions(),
        order_proportions=order_log.visited_proportions(),
        traversal_ratio=trav_log.visited_to_changed_ratio(),
        order_ratio=order_log.visited_to_changed_ratio(),
        traversal_log=trav_log,
        order_log=order_log,
    )


def fig1(name: str, **kwargs) -> InsertionVisitResult:
    """Fig. 1: bucketed distribution of vertices visited per insertion."""
    return insertion_visits(name, **kwargs)


def fig2(name: str, **kwargs) -> InsertionVisitResult:
    """Fig. 2: ratio of total visited to total updated vertices."""
    return insertion_visits(name, **kwargs)


# ======================================================================
# Fig. 5 — pc / sc / oc size distributions
# ======================================================================

@dataclass
class Fig5Result:
    dataset: str
    sc: CdfResult
    pc: CdfResult
    oc: CdfResult


def fig5(
    name: str,
    sample: int = 400,
    scale: Optional[float] = None,
    seed: int = 42,
) -> Fig5Result:
    """Fig. 5: cumulative size distributions of purecore, subcore and
    ordercore over a vertex sample."""
    import random as _random

    dataset = load_dataset(name, scale=scale, seed=seed)
    graph = dataset.graph()
    decomposition = korder_decomposition(graph, policy="small")
    core = decomposition.core
    korder = KOrder.from_decomposition(decomposition)
    mcd = compute_mcd(graph, core)
    rng = _random.Random(seed)
    vertices = sorted(graph.vertices())
    if len(vertices) > sample:
        vertices = rng.sample(vertices, sample)
    sc_sizes = [len(sub_core(graph, core, v)) for v in vertices]
    pc_sizes = [len(pure_core(graph, core, mcd, v)) for v in vertices]
    oc_sizes = [len(order_core(graph, korder, core, v)) for v in vertices]
    return Fig5Result(
        dataset=name,
        sc=CdfResult(name, *cumulative_distribution(sc_sizes)),
        pc=CdfResult(name, *cumulative_distribution(pc_sizes)),
        oc=CdfResult(name, *cumulative_distribution(oc_sizes)),
    )


# ======================================================================
# Fig. 9 — k-order generation heuristics
# ======================================================================

@dataclass
class Fig9Result:
    dataset: str
    ratios: dict[str, float]  # policy -> |V+| / |V*|


def fig9(
    name: str,
    n_updates: int = DEFAULT_UPDATES,
    scale: Optional[float] = None,
    seed: int = 42,
) -> Fig9Result:
    """Fig. 9: |V+|/|V*| for small / large / random deg+ first."""
    dataset = load_dataset(name, scale=scale, seed=seed)
    workload = make_workload(dataset, n_updates, seed=seed)
    ratios: dict[str, float] = {}
    for policy in ("small", "large", "random"):
        engine = OrderedCoreMaintainer(
            workload.base_graph(), policy=policy, seed=seed
        )
        log = run_updates(engine, workload.update_edges, "insert")
        ratios[policy] = log.visited_to_changed_ratio()
    return Fig9Result(dataset=name, ratios=ratios)


# ======================================================================
# Table II — accumulated update times
# ======================================================================

@dataclass
class Table2Row:
    dataset: str
    insert_seconds: dict[str, float]
    remove_seconds: dict[str, float]

    def insert_speedup(self, against: str = "trav-2") -> float:
        """Order-based insertion speedup over a traversal variant."""
        order = self.insert_seconds["order"]
        return self.insert_seconds[against] / order if order else float("inf")

    def remove_speedup(self, against: str = "trav-2") -> float:
        order = self.remove_seconds["order"]
        return self.remove_seconds[against] / order if order else float("inf")


def table2(
    name: str,
    n_updates: int = DEFAULT_UPDATES,
    hops: Sequence[int] = DEFAULT_HOPS,
    scale: Optional[float] = None,
    seed: int = 42,
    engines: Optional[Sequence[str]] = None,
) -> Table2Row:
    """Table II: accumulated insert / remove time per engine.

    Following the paper: insert the update edges one by one into the base
    graph, then remove those same edges from the resulting full graph.

    ``engines`` overrides the engine list (any registry names); the
    default replays the paper's lineup — ``order`` against ``trav-<h>``
    for every hop count.  The ablation benches pass e.g.
    ``["order", "order-simplified"]`` to race the two order-family
    engines on identical workloads.
    """
    dataset = load_dataset(name, scale=scale, seed=seed)
    workload = make_workload(dataset, n_updates, seed=seed)
    if engines is None:
        engines = ["order"] + [f"trav-{h}" for h in hops]
    insert_seconds: dict[str, float] = {}
    remove_seconds: dict[str, float] = {}
    for engine_name in engines:
        engine = build_engine(engine_name, workload.base_graph(), seed=seed)
        insert_log = run_updates(engine, workload.update_edges, "insert")
        insert_seconds[engine_name] = insert_log.total_seconds
        # Removal continues from the post-insertion state (the full graph),
        # removing the same edges in reverse arrival order.
        remove_log = run_updates(
            engine, list(reversed(workload.update_edges)), "remove"
        )
        remove_seconds[engine_name] = remove_log.total_seconds
    return Table2Row(name, insert_seconds, remove_seconds)


# ======================================================================
# Table III — index creation time
# ======================================================================

@dataclass
class Table3Row:
    dataset: str
    build_seconds: dict[str, float]


def table3(
    name: str,
    hops: Sequence[int] = DEFAULT_HOPS,
    scale: Optional[float] = None,
    seed: int = 42,
) -> Table3Row:
    """Table III: index creation time (includes core decomposition)."""
    dataset = load_dataset(name, scale=scale, seed=seed)
    graph_edges = dataset.edges
    build_seconds: dict[str, float] = {}
    for engine_name in ["order"] + [f"trav-{h}" for h in hops]:
        graph = DynamicGraph.from_edges(graph_edges)
        _, seconds = time_index_build(
            lambda g, _n=engine_name: build_engine(_n, g, seed=seed), graph
        )
        build_seconds[engine_name] = seconds
    return Table3Row(name, build_seconds)


# ======================================================================
# Fig. 11 — scalability
# ======================================================================

@dataclass
class ScalabilityPoint:
    fraction: float
    seconds: float
    edge_ratio: float
    vertex_ratio: float


@dataclass
class Fig11Result:
    dataset: str
    vary_vertices: list[ScalabilityPoint]
    vary_edges: list[ScalabilityPoint]


def fig11(
    name: str,
    fractions: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
    n_updates: int = DEFAULT_UPDATES,
    scale: Optional[float] = None,
    seed: int = 42,
) -> Fig11Result:
    """Fig. 11: OrderInsert time on vertex- and edge-sampled subgraphs."""
    dataset = load_dataset(name, scale=scale, seed=seed)
    full_vertices = {u for u, _ in dataset.edges} | {v for _, v in dataset.edges}
    full_m = len(dataset.edges)

    def run_on(edges: list) -> float:
        sub = load_dataset(name, scale=scale, seed=seed)
        sub.edges = edges
        workload = make_workload(sub, n_updates, seed=seed)
        engine = build_engine("order", workload.base_graph(), seed=seed)
        log = run_updates(engine, workload.update_edges, "insert")
        return log.total_seconds

    vary_vertices = []
    for fraction in fractions:
        edges = sample_vertex_fraction(dataset, fraction, seed=seed)
        vertices = {u for u, _ in edges} | {v for _, v in edges}
        vary_vertices.append(
            ScalabilityPoint(
                fraction=fraction,
                seconds=run_on(edges),
                edge_ratio=len(edges) / full_m if full_m else 0.0,
                vertex_ratio=len(vertices) / len(full_vertices)
                if full_vertices
                else 0.0,
            )
        )
    vary_edges = []
    for fraction in fractions:
        edges = sample_edge_fraction(dataset, fraction, seed=seed)
        vertices = {u for u, _ in edges} | {v for _, v in edges}
        vary_edges.append(
            ScalabilityPoint(
                fraction=fraction,
                seconds=run_on(edges),
                edge_ratio=len(edges) / full_m if full_m else 0.0,
                vertex_ratio=len(vertices) / len(full_vertices)
                if full_vertices
                else 0.0,
            )
        )
    return Fig11Result(name, vary_vertices, vary_edges)


# ======================================================================
# Fig. 12 — stability
# ======================================================================

@dataclass
class Fig12Result:
    dataset: str
    p: float
    group_seconds: list[float]
    group_changed: list[int]


def fig12(
    name: str,
    n_groups: int = 10,
    group_size: int = 100,
    p: float = 0.0,
    scale: Optional[float] = None,
    seed: int = 42,
) -> Fig12Result:
    """Fig. 12: per-group accumulated OrderInsert time over many groups.

    With ``p > 0``, each insertion is followed with probability ``p`` by a
    random removal (Figs. 12c/12d), whose time counts toward the group.
    """
    dataset = load_dataset(name, scale=scale, seed=seed)
    workload, groups = grouped_stream(dataset, n_groups, group_size, seed=seed)
    engine = build_engine("order", workload.base_graph(), seed=seed)
    present = list(workload.base_edges)
    group_seconds: list[float] = []
    group_changed: list[int] = []
    for index, group in enumerate(groups):
        if p > 0.0:
            plan = interleave_removals(present, group, p, seed=seed + index)
            log = run_mixed(engine, plan)
            # Track the surviving edge pool for the next group.
            removed = {e for kind, e in plan if kind == "remove"}
            present = [e for e in present if e not in removed]
            present.extend(
                e for kind, e in plan if kind == "insert" and e not in removed
            )
        else:
            log = run_updates(engine, group, "insert")
            present.extend(group)
        group_seconds.append(log.total_seconds)
        group_changed.append(log.total_changed)
    return Fig12Result(name, p, group_seconds, group_changed)


# ======================================================================
# Batch pipeline — batched vs per-edge replay of a mixed stream
# ======================================================================

@dataclass
class BatchThroughputRow:
    """One engine's per-edge vs batched replay of the same mixed plan."""

    engine: str
    ops: int
    per_edge_seconds: float
    batched_seconds: float
    mcd_per_edge: Optional[int] = None  # order engine only
    mcd_batched: Optional[int] = None
    #: Sequence-backend stats of the batched replay (order engine only):
    #: order tests answered vs pointer hops spent ranking — the OM
    #: backend keeps ``rank_walk_steps`` at 0.
    order_queries: Optional[int] = None
    rank_walk_steps: Optional[int] = None
    relabels: Optional[int] = None

    @property
    def speedup(self) -> float:
        return (
            self.per_edge_seconds / self.batched_seconds
            if self.batched_seconds
            else float("inf")
        )


@dataclass
class BatchThroughputResult:
    dataset: str
    batch_size: int
    p: float
    rows: list[BatchThroughputRow]


def batch_throughput(
    name: str,
    n_updates: int = DEFAULT_UPDATES,
    batch_size: int = 100,
    p: float = 0.2,
    engines: Sequence[str] = ("order", "trav-2", "naive"),
    scale: Optional[float] = None,
    seed: int = 42,
    engine_opts: Optional[dict] = None,
) -> BatchThroughputResult:
    """Replay one mixed insert/remove stream per-edge and batched.

    Both replays start from a fresh base graph and must end with
    identical core numbers (asserted); for the order engine the row also
    reports the ``mcd`` recomputation counters, the work the batched
    path amortizes per run.  ``engine_opts`` (e.g. ``partition`` /
    ``parallel`` for the region scheduler) apply to the order-family
    engines, which are the ones whose factories accept them.
    """
    dataset = load_dataset(name, scale=scale, seed=seed)
    workload, plan, batches = mixed_batch_workload(
        dataset, n_updates, batch_size, p=p, seed=seed
    )
    rows = []
    for engine_name in engines:
        opts = engine_opts if engine_opts and engine_name.startswith("order") else {}
        per_edge = build_engine(
            engine_name, workload.base_graph(), seed=seed, **opts
        )
        per_edge_log = run_mixed(per_edge, plan)
        # The batched replay goes through the service façade — the path
        # every production consumer takes (commits, receipts, events).
        batched = build_service(
            engine_name, workload.base_graph(), seed=seed, **opts
        )
        results = run_batches(batched, batches)
        assert per_edge.core_numbers() == batched.cores(), (
            f"{engine_name}: batched replay diverged from per-edge replay"
        )
        stats = getattr(batched.engine, "sequence_stats", None)
        rows.append(
            BatchThroughputRow(
                engine=engine_name,
                ops=len(plan),
                per_edge_seconds=per_edge_log.total_seconds,
                batched_seconds=sum(r.seconds for r in results),
                mcd_per_edge=getattr(per_edge, "mcd_recomputations", None),
                mcd_batched=getattr(
                    batched.engine, "mcd_recomputations", None
                ),
                order_queries=stats.order_queries if stats else None,
                rank_walk_steps=stats.rank_walk_steps if stats else None,
                relabels=stats.relabels if stats else None,
            )
        )
    return BatchThroughputResult(name, batch_size, p, rows)


# ======================================================================
# Ablation — the value of the jump heap B (Section VI, Algorithm 2 l.15)
# ======================================================================

@dataclass
class AblationJumpResult:
    dataset: str
    jump_seconds: float
    scan_seconds: float
    visited: int  # |V+| — identical for both variants by construction
    scanned: int  # sequential steps the scan variant had to take

    @property
    def steps_saved(self) -> int:
        """Case-2a steps the jump heap skipped outright."""
        return self.scanned - self.visited


def ablation_jump(
    name: str,
    n_updates: int = DEFAULT_UPDATES,
    scale: Optional[float] = None,
    seed: int = 42,
) -> AblationJumpResult:
    """Quantify the jump heap: OrderInsert vs an identical-semantics
    sequential scan of ``O_K`` (see :mod:`repro.core.ablation`)."""
    from repro.core.ablation import ScanningOrderedCoreMaintainer

    dataset = load_dataset(name, scale=scale, seed=seed)
    workload = make_workload(dataset, n_updates, seed=seed)

    jump_engine = build_engine("order", workload.base_graph(), seed=seed)
    jump_log = run_updates(jump_engine, workload.update_edges, "insert")

    scan_engine = ScanningOrderedCoreMaintainer(
        workload.base_graph(), seed=seed
    )
    scan_started = time.perf_counter()
    scan_visited = 0
    for edge in workload.update_edges:
        scan_visited += scan_engine.insert_edge(*edge).visited
    scan_seconds = time.perf_counter() - scan_started
    assert scan_visited == jump_log.total_visited, (
        "ablation variants must agree on |V+|"
    )
    return AblationJumpResult(
        dataset=name,
        jump_seconds=jump_log.total_seconds,
        scan_seconds=scan_seconds,
        visited=scan_visited,
        scanned=scan_engine.total_scanned,
    )


# ======================================================================
# Convenience: run everything
# ======================================================================

def run_all(
    names: Optional[Sequence[str]] = None,
    n_updates: int = DEFAULT_UPDATES,
    hops: Sequence[int] = (2, 3),
    scale: Optional[float] = None,
    seed: int = 42,
) -> dict:
    """Run every experiment on the given datasets; returns a result map.

    Used by ``repro all`` and the EXPERIMENTS.md regeneration; hop counts
    default to (2, 3) to bound runtime — pass all five for the full table.
    """
    names = list(names or dataset_names())
    started = time.perf_counter()
    results = {
        "table1": table1(names, scale=scale, seed=seed),
        "fig10a": [fig10a(n, scale=scale, seed=seed) for n in names],
        "fig10b": [
            fig10b(n, n_updates, scale=scale, seed=seed) for n in names
        ],
        "fig1_fig2": [
            insertion_visits(n, n_updates, scale=scale, seed=seed)
            for n in names
        ],
        "fig5": [
            fig5(n, scale=scale, seed=seed) for n in ("patents", "orkut")
        ],
        "fig9": [fig9(n, n_updates, scale=scale, seed=seed) for n in names],
        "table2": [
            table2(n, n_updates, hops, scale=scale, seed=seed) for n in names
        ],
        "table3": [table3(n, hops, scale=scale, seed=seed) for n in names],
        "fig11": [
            fig11(n, n_updates=n_updates, scale=scale, seed=seed)
            for n in ("patents", "orkut", "livejournal")
        ],
        "fig12": [
            fig12("patents", p=p, scale=scale, seed=seed)
            for p in (0.0, 0.1, 0.2)
        ],
    }
    results["elapsed_seconds"] = time.perf_counter() - started
    return results

"""Plain-text rendering of experiment results.

Every experiment's dataclasses get a renderer that prints the same rows
or series the paper reports, so a terminal run of ``repro all`` reads like
the evaluation section.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.bench.experiments import (
    BatchThroughputResult,
    CdfResult,
    Fig5Result,
    Fig9Result,
    Fig11Result,
    Fig12Result,
    InsertionVisitResult,
    Table1Row,
    Table2Row,
    Table3Row,
)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Align columns of a small table for terminal output."""
    materialized = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in materialized:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def _fmt(seconds: float) -> str:
    return f"{seconds:.3f}"


def render_table1(rows: list[Table1Row]) -> str:
    """Table I: stand-in statistics side by side with the paper's."""
    return format_table(
        ["dataset", "n", "m", "avg deg", "max k",
         "paper n", "paper m", "paper avg", "paper max k"],
        [
            (r.dataset, r.n, r.m, r.avg_deg, r.max_k,
             r.paper_n, r.paper_m, r.paper_avg_deg, r.paper_max_k)
            for r in rows
        ],
    )


def render_fig1(results: list[InsertionVisitResult]) -> str:
    """Fig. 1: visited-count buckets, traversal (left) vs order (right)."""
    headers = ["dataset", "engine"] + list(results[0].labels)
    rows = []
    for r in results:
        rows.append(
            [r.dataset, "traversal"]
            + [f"{p:.3f}" for p in r.traversal_proportions]
        )
        rows.append(
            ["", "order"] + [f"{p:.3f}" for p in r.order_proportions]
        )
    return format_table(headers, rows)


def render_fig2(results: list[InsertionVisitResult]) -> str:
    """Fig. 2: sum visited / sum updated, per engine."""
    return format_table(
        ["dataset", "traversal |V'|/|V*|", "order |V+|/|V*|"],
        [
            (r.dataset, f"{r.traversal_ratio:.2f}", f"{r.order_ratio:.2f}")
            for r in results
        ],
    )


def _cdf_milestones(cdf: CdfResult, thresholds=(1, 10, 100, 1000, 10000)) -> list[str]:
    cells = []
    for t in thresholds:
        fraction = 0.0
        for x, f in zip(cdf.xs, cdf.fractions):
            if x <= t:
                fraction = f
            else:
                break
        cells.append(f"{fraction:.2f}")
    return cells


def render_fig5(results: list[Fig5Result]) -> str:
    """Fig. 5: fraction of vertices with structure size <= threshold."""
    thresholds = (1, 10, 100, 1000, 10000)
    headers = ["dataset", "structure"] + [f"<={t}" for t in thresholds]
    rows = []
    for r in results:
        for label, cdf in (("pc", r.pc), ("sc", r.sc), ("oc", r.oc)):
            rows.append([r.dataset, label] + _cdf_milestones(cdf, thresholds))
    return format_table(headers, rows)


def render_fig9(results: list[Fig9Result]) -> str:
    """Fig. 9: |V+|/|V*| per k-order generation heuristic."""
    return format_table(
        ["dataset", "small deg+", "large deg+", "random deg+"],
        [
            (
                r.dataset,
                f"{r.ratios['small']:.2f}",
                f"{r.ratios['large']:.2f}",
                f"{r.ratios['random']:.2f}",
            )
            for r in results
        ],
    )


def render_fig10(results: list[CdfResult], title: str) -> str:
    """Figs. 10a/10b: CDF milestones per dataset."""
    thresholds = (1, 2, 3, 5, 10, 100)
    headers = [title] + [f"<={t}" for t in thresholds]
    rows = [[r.dataset] + _cdf_milestones(r, thresholds) for r in results]
    return format_table(headers, rows)


def render_table2(rows: list[Table2Row]) -> str:
    """Table II: accumulated seconds per engine, insert then remove."""
    engines = list(rows[0].insert_seconds)
    headers = (
        ["dataset"]
        + [f"ins {e}" for e in engines]
        + [f"rem {e}" for e in engines]
        + ["ins speedup", "rem speedup"]
    )
    table_rows = []
    for r in rows:
        table_rows.append(
            [r.dataset]
            + [_fmt(r.insert_seconds[e]) for e in engines]
            + [_fmt(r.remove_seconds[e]) for e in engines]
            + [f"{r.insert_speedup():.1f}x", f"{r.remove_speedup():.1f}x"]
        )
    return format_table(headers, table_rows)


def render_table3(rows: list[Table3Row]) -> str:
    """Table III: index creation seconds per engine."""
    engines = list(rows[0].build_seconds)
    return format_table(
        ["dataset"] + engines,
        [
            [r.dataset] + [_fmt(r.build_seconds[e]) for e in engines]
            for r in rows
        ],
    )


def render_fig11(results: list[Fig11Result]) -> str:
    """Fig. 11: insertion time and size ratios across sample fractions."""
    headers = [
        "dataset", "axis", "fraction", "seconds", "edge ratio", "vertex ratio",
    ]
    rows = []
    for r in results:
        for axis, points in (("|V|", r.vary_vertices), ("|E|", r.vary_edges)):
            for p in points:
                rows.append(
                    [
                        r.dataset,
                        axis,
                        f"{p.fraction:.0%}",
                        _fmt(p.seconds),
                        f"{p.edge_ratio:.2f}",
                        f"{p.vertex_ratio:.2f}",
                    ]
                )
    return format_table(headers, rows)


def render_fig12(results: list[Fig12Result]) -> str:
    """Fig. 12: per-group accumulated seconds (and updates) over groups."""
    headers = ["dataset", "p", "group", "seconds", "|V*| in group"]
    rows = []
    for r in results:
        for i, (sec, changed) in enumerate(
            zip(r.group_seconds, r.group_changed)
        ):
            rows.append([r.dataset, f"{r.p:.1f}", i + 1, _fmt(sec), changed])
    return format_table(headers, rows)


def render_batch(results: list[BatchThroughputResult]) -> str:
    """Batch pipeline: per-edge vs batched replay of a mixed stream.

    The last three columns carry the order engine's sequence-backend
    stats over the batched replay: order tests answered, pointer hops
    spent on rank walks (0 under the OM backend), and OM relabelings.
    """
    headers = [
        "dataset", "engine", "ops", "batch", "p",
        "per-edge s", "batched s", "speedup", "mcd/edge", "mcd/batch",
        "queries", "rank steps", "relabels",
    ]
    rows = []
    for result in results:
        for row in result.rows:
            rows.append(
                [
                    result.dataset,
                    row.engine,
                    row.ops,
                    result.batch_size,
                    f"{result.p:.1f}",
                    _fmt(row.per_edge_seconds),
                    _fmt(row.batched_seconds),
                    f"{row.speedup:.2f}x",
                    row.mcd_per_edge if row.mcd_per_edge is not None else "-",
                    row.mcd_batched if row.mcd_batched is not None else "-",
                    row.order_queries if row.order_queries is not None else "-",
                    row.rank_walk_steps
                    if row.rank_walk_steps is not None else "-",
                    row.relabels if row.relabels is not None else "-",
                ]
            )
    return format_table(headers, rows)

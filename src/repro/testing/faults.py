"""Deterministic fault injection: named crash points, armed on demand.

Durability claims are only as good as the failures they survive, so the
durable-session stack (:mod:`repro.service.wal`, the snapshot writer,
the engines' batch paths, the sharded worker pool) is instrumented with
**named crash points**: call sites that invoke :func:`inject` with a
registered point name.  When no plan is armed the call is one global
read and a ``None`` check — it never shows up in benchmarks.

A test arms a :class:`FaultPlan` as a context manager::

    with FaultPlan().crash("wal.after_append") as plan:
        with pytest.raises(InjectedFault):
            svc.insert(1, 2)            # dies right after the WAL write
    assert plan.fired == ["wal.after_append"]
    recovered = CoreService.recover(log_path)

Points are armed by *hit count* (``hits=3`` → the third time execution
reaches the point) or by *probability* with a seeded RNG — both
deterministic, so a shrunk hypothesis failure replays exactly.  A fired
:class:`InjectedFault` propagates like a crash: the library never
catches it, state is abandoned mid-operation, and recovery must work
from whatever reached disk.
"""

from __future__ import annotations

import random
import threading
from typing import Optional

from repro.errors import ReproError

#: Every registered crash point and where it fires.  Arming an unknown
#: name is a test bug and raises immediately.  Subsystems outside the
#: durable write path (the async serving front, the log replica) add
#: their own points at import time via :func:`register_fault_point`
#: instead of growing this literal.
FAULT_POINTS: dict[str, str] = {
    "service.before_commit": (
        "CoreService._commit: batch validated, nothing written or applied"
    ),
    "wal.before_append": (
        "WriteAheadLog.append: record framed, no bytes written"
    ),
    "wal.mid_append": (
        "WriteAheadLog.append: half the framed record written (torn tail)"
    ),
    "wal.after_append": (
        "WriteAheadLog.append: record written and flushed, fsync policy "
        "not yet run"
    ),
    "wal.before_fsync": "WriteAheadLog: about to fsync the log file",
    "wal.after_fsync": "WriteAheadLog: log fsynced, append not yet reported",
    "engine.mid_batch": (
        "engine apply_batch: between committed sub-units of one batch "
        "(runs for the order engine, ops for per-edge engines)"
    ),
    "shard.worker_commit": (
        "ShardedOrderEngine: a worker about to commit its per-shard "
        "sub-batch"
    ),
    "snapshot.mid_write": (
        "snapshot writer: half the payload written to the temp file, "
        "rename not yet performed"
    ),
}


def register_fault_point(name: str, description: str) -> None:
    """Register a named fault point so plans can arm it.

    Instrumented subsystems call this at import time for their own
    points (``server.*``, ``replica.*``, …); the core durable-write
    points above stay predeclared.  Re-registering a point with the
    same description is a no-op (modules may be reimported); changing
    an existing point's description raises — two call sites claiming
    the same name is a bug.
    """
    if "." not in name:
        raise ValueError(
            f"fault point names are namespaced 'subsystem.point', got {name!r}"
        )
    if not description:
        raise ValueError(f"fault point {name!r} needs a description")
    existing = FAULT_POINTS.get(name)
    if existing is not None and existing != description:
        raise ValueError(
            f"fault point {name!r} is already registered as: {existing}"
        )
    FAULT_POINTS[name] = description


class InjectedFault(ReproError):
    """A crash point fired.  Simulates a process dying mid-operation.

    The library never catches this exception (tests and the stateful
    machine do), so it unwinds exactly like a crash would: whatever was
    durable stays, everything in flight is lost.
    """

    def __init__(self, point: str, hit: int) -> None:
        super().__init__(f"injected fault at {point!r} (hit {hit})")
        self.point = point
        self.hit = hit


class FaultPlan:
    """A set of armed crash points, installed as a context manager.

    Parameters
    ----------
    seed:
        Seeds the RNG used by probability-armed points, so probabilistic
        schedules replay deterministically.

    Arm points with :meth:`crash` (chainable).  Entering the plan makes
    it the process-wide active plan (instrumented code is threaded
    through one module-global, shared with worker threads on purpose —
    a sharded commit's pool workers must see the same plan); leaving
    restores the previous one.  :attr:`fired` records every point that
    actually raised, in firing order.
    """

    def __init__(self, seed: Optional[int] = 0) -> None:
        self._arms: dict[str, dict] = {}
        self._hits: dict[str, int] = {}
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._previous: Optional["FaultPlan"] = None
        #: Points that fired, in order (a point armed by count fires once).
        self.fired: list[str] = []

    def crash(
        self,
        point: str,
        *,
        hits: int = 1,
        probability: Optional[float] = None,
    ) -> "FaultPlan":
        """Arm ``point``; returns ``self`` for chaining.

        With ``hits=n`` the point fires the *n*-th time execution
        reaches it (then disarms).  With ``probability=p`` every hit
        fires independently with probability ``p`` under the plan's
        seeded RNG (and the point stays armed).
        """
        if point not in FAULT_POINTS:
            known = ", ".join(sorted(FAULT_POINTS))
            raise ValueError(
                f"unknown fault point {point!r}; registered points: {known}"
            )
        if hits < 1:
            raise ValueError(f"hits must be >= 1, got {hits}")
        if probability is not None and not (0.0 <= probability <= 1.0):
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        self._arms[point] = {"hits": hits, "probability": probability}
        return self

    def armed(self, point: str) -> bool:
        """Whether ``point`` is currently armed (may still never fire)."""
        return point in self._arms

    def hits(self, point: str) -> int:
        """How many times execution has reached ``point`` under this plan."""
        return self._hits.get(point, 0)

    def _hit(self, point: str) -> None:
        with self._lock:
            count = self._hits.get(point, 0) + 1
            self._hits[point] = count
            arm = self._arms.get(point)
            if arm is None:
                return
            if arm["probability"] is not None:
                if self._rng.random() >= arm["probability"]:
                    return
            elif count != arm["hits"]:
                return
            else:
                del self._arms[point]  # count-armed points fire once
            self.fired.append(point)
        raise InjectedFault(point, count)

    def __enter__(self) -> "FaultPlan":
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _ACTIVE
        _ACTIVE = self._previous
        self._previous = None


#: The active plan; ``None`` keeps every crash point inert.
_ACTIVE: Optional[FaultPlan] = None


def inject(point: str) -> None:
    """Fire ``point`` if the active plan says so; no-op otherwise.

    The production-code hook: instrumented call sites invoke this with
    their registered name.  Cost when nothing is armed: one global read
    and a ``None`` test.
    """
    plan = _ACTIVE
    if plan is not None:
        plan._hit(point)


def is_armed(point: str) -> bool:
    """Whether the active plan has ``point`` armed.

    Lets a call site choose a more expensive instrumented path (e.g.
    the WAL's split write for ``wal.mid_append``) only while a plan
    actually targets it.
    """
    plan = _ACTIVE
    return plan is not None and plan.armed(point)

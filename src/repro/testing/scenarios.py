"""Tiny scenario fixtures for the test matrix and hypothesis suites.

Cross-engine replay agreement is quadratic in patience — every tick of
every scenario replays on every engine under comparison — so the suites
run the families at miniature parameterizations.  The shrunken knobs
live here, next to the harness code, so every suite (unit, property,
server round-trip) stresses the identical streams.
"""

from __future__ import annotations

from repro.scenarios import Scenario, available_scenarios, make_scenario

#: Per-family miniature knobs: same shapes, a fraction of the ops.
TINY_PARAMS: dict[str, dict] = {
    "burst": dict(
        ticks=6, trickle=2, burst_every=3, burst_size=10, pocket=6
    ),
    "sliding-window": dict(ticks=10, arrivals=4, window=3),
    "flash-crowd": dict(waves=2, crowd=6, links=2, dwell=1),
    "relabel-storm": dict(ticks=6, chain=6, anchors=2),
    "shard-merge-storm": dict(cycles=3, pockets=3, pocket_size=4),
    "mixed": dict(tick_ops=12, p=0.25),
}

#: Scale for the miniature base graphs (generator minimums still apply).
TINY_SCALE = 0.25


def tiny_scenario(name: str, seed: int = 0) -> Scenario:
    """The miniature edition of family ``name`` — same stress shape,
    tens of ops instead of hundreds."""
    return make_scenario(
        name, seed=seed, scale=TINY_SCALE, **TINY_PARAMS.get(name, {})
    )


def tiny_scenarios(seed: int = 0) -> list[Scenario]:
    """One miniature scenario per registered family."""
    return [tiny_scenario(name, seed=seed) for name in available_scenarios()]

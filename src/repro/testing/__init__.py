"""Test-support subsystems shipped with the library.

:mod:`repro.testing.faults` is the deterministic fault-injection
harness the crash-recovery suite arms against the WAL, the snapshot
writer and the engines.  It lives in the package (not ``tests/``)
because the *production* modules carry the instrumented crash points —
the harness is the contract between them and the test matrix.

:mod:`repro.testing.scenarios` carries the miniature parameterizations
of the workload scenario families (:mod:`repro.scenarios`) that the
cross-engine replay-agreement suites share.
"""

from repro.testing.faults import (
    FAULT_POINTS,
    FaultPlan,
    InjectedFault,
    inject,
    register_fault_point,
)

_SCENARIO_HELPERS = (
    "TINY_PARAMS", "TINY_SCALE", "tiny_scenario", "tiny_scenarios"
)


def __getattr__(name: str):
    # Lazy: the engines import repro.testing.faults at module load, and
    # repro.testing.scenarios pulls the whole scenarios/service stack —
    # importing it eagerly here would be circular.
    if name in _SCENARIO_HELPERS:
        from repro.testing import scenarios

        return getattr(scenarios, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "FAULT_POINTS",
    "FaultPlan",
    "InjectedFault",
    "inject",
    "register_fault_point",
    "TINY_PARAMS",
    "TINY_SCALE",
    "tiny_scenario",
    "tiny_scenarios",
]

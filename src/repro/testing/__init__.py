"""Test-support subsystems shipped with the library.

:mod:`repro.testing.faults` is the deterministic fault-injection
harness the crash-recovery suite arms against the WAL, the snapshot
writer and the engines.  It lives in the package (not ``tests/``)
because the *production* modules carry the instrumented crash points —
the harness is the contract between them and the test matrix.
"""

from repro.testing.faults import (
    FAULT_POINTS,
    FaultPlan,
    InjectedFault,
    inject,
    register_fault_point,
)

__all__ = [
    "FAULT_POINTS",
    "FaultPlan",
    "InjectedFault",
    "inject",
    "register_fault_point",
]
